//! Naive reference kernels, kept for equivalence tests and benchmarks.
//!
//! These are the original straight-line implementations that the optimized
//! kernels replaced: they allocate fresh buffers for every column they touch
//! and perform no blocking or workspace reuse. They remain the ground truth —
//! the optimized paths are required (and tested) to be **bit-exact** against
//! them — and the `perf_report` binary benchmarks against them to track the
//! speedup of every PR.
//!
//! Compiled only under `cfg(test)` or the `reference` feature so release
//! builds of the pipeline carry no dead code.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::svd::{Svd, MAX_SWEEPS, ORTHO_TOL};

/// The original triple-loop matrix product (fresh output allocation, no blocking).
pub fn matmul_naive(a: &CMatrix, rhs: &CMatrix) -> CMatrix {
    assert_eq!(
        a.cols(),
        rhs.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        rhs.rows(),
        rhs.cols()
    );
    let mut out = CMatrix::zeros(a.rows(), rhs.cols());
    for r in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a[(r, k)];
            if v.norm_sqr() == 0.0 {
                continue;
            }
            for c in 0..rhs.cols() {
                out[(r, c)] += v * rhs[(k, c)];
            }
        }
    }
    out
}

/// The original Hermitian-product composition: materializes `A^H`, then multiplies.
pub fn hermitian_matmul_naive(a: &CMatrix, rhs: &CMatrix) -> CMatrix {
    matmul_naive(&a.hermitian(), rhs)
}

/// The original one-sided Jacobi SVD: extracts a fresh `Vec` for every column
/// it reads and writes back through `set_column`, allocating throughout the
/// sweep loop.
pub fn svd_naive(a: &CMatrix) -> Svd {
    let (m, n) = a.shape();
    // Work on the tall orientation so every column lives in the larger space;
    // if the input is wide we decompose A^H = U' S V'^H and swap the factors.
    if m < n {
        let swapped = svd_naive(&a.hermitian());
        return Svd {
            u: swapped.v,
            singular_values: swapped.singular_values,
            v: swapped.u,
        };
    }

    let mut work = a.clone();
    let mut v = CMatrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                let col_p = work.column(p);
                let col_q = work.column(q);
                let alpha: f64 = col_p.iter().map(|z| z.norm_sqr()).sum();
                let beta: f64 = col_q.iter().map(|z| z.norm_sqr()).sum();
                let gamma: Complex64 = col_p
                    .iter()
                    .zip(col_q.iter())
                    .map(|(a, b)| a.conj() * *b)
                    .sum();
                let gamma_abs = gamma.abs();
                if gamma_abs <= ORTHO_TOL * (alpha * beta).sqrt() || gamma_abs == 0.0 {
                    continue;
                }
                converged = false;

                // Remove the phase of gamma so the 2x2 problem becomes real,
                // then apply the classical Jacobi rotation.
                let phase = gamma / Complex64::from_real(gamma_abs);
                let zeta = (beta - alpha) / (2.0 * gamma_abs);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Column update:
                //   new_p = c * a_p - s * conj(phase) * a_q
                //   new_q = s * phase * a_p + c * a_q
                // which corresponds to right-multiplying by a unitary plane rotation.
                let phase_conj = phase.conj();
                let mut new_p = Vec::with_capacity(m);
                let mut new_q = Vec::with_capacity(m);
                for r in 0..m {
                    let ap = col_p[r];
                    let aq = col_q[r];
                    new_p.push(ap.scale(c) - (phase_conj * aq).scale(s));
                    new_q.push((phase * ap).scale(s) + aq.scale(c));
                }
                work.set_column(p, &new_p);
                work.set_column(q, &new_q);

                // Apply the same rotation to the accumulated V.
                let vp = v.column(p);
                let vq = v.column(q);
                let mut new_vp = Vec::with_capacity(n);
                let mut new_vq = Vec::with_capacity(n);
                for r in 0..n {
                    let a_ = vp[r];
                    let b_ = vq[r];
                    new_vp.push(a_.scale(c) - (phase_conj * b_).scale(s));
                    new_vq.push((phase * a_).scale(s) + b_.scale(c));
                }
                v.set_column(p, &new_vp);
                v.set_column(q, &new_vq);
            }
        }
        if converged {
            break;
        }
    }

    // Column norms are the singular values; sort in non-increasing order.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| {
            work.column(c)
                .iter()
                .map(|z| z.norm_sqr())
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let k = n; // thin SVD: k = min(m, n) = n because we forced m >= n above.
    let mut u = CMatrix::zeros(m, k);
    let mut v_sorted = CMatrix::zeros(n, k);
    let mut singular_values = Vec::with_capacity(k);
    for (new_idx, &old_idx) in order.iter().enumerate() {
        let sigma = norms[old_idx];
        singular_values.push(sigma);
        let col = work.column(old_idx);
        if sigma > 1e-300 {
            let normalized: Vec<Complex64> = col.iter().map(|z| *z / sigma).collect();
            u.set_column(new_idx, &normalized);
        } else {
            // Rank-deficient direction: leave a unit vector not colliding with
            // previous columns; exactness is irrelevant because sigma == 0.
            let mut e = vec![Complex64::ZERO; m];
            e[new_idx.min(m - 1)] = Complex64::ONE;
            u.set_column(new_idx, &e);
        }
        v_sorted.set_column(new_idx, &v.column(old_idx));
    }

    Svd {
        u,
        singular_values,
        v: v_sorted,
    }
}
