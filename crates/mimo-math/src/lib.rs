//! Complex linear-algebra substrate for the SplitBeam reproduction.
//!
//! This crate provides the small, dependency-free numerical kernel every other
//! crate in the workspace builds on:
//!
//! * [`Complex64`] — a complex scalar with the usual arithmetic,
//! * [`CMatrix`] — a dense complex matrix with products, Hermitian transpose,
//!   norms and slicing,
//! * [`svd`] — a one-sided Jacobi singular value decomposition used to compute
//!   the IEEE 802.11 beamforming matrix `V` from a channel estimate `H`,
//! * [`qr`] — modified Gram–Schmidt QR used in tests and for orthonormality
//!   checks,
//! * [`solve`] — LU-based linear solves and inverses used by the zero-forcing
//!   precoder,
//! * [`kernel`] — the runtime-dispatched SIMD backend (`SPLITBEAM_KERNEL`)
//!   behind the matmul/solve inner loops here and the dense f32 kernels of the
//!   `neural` crate.
//!
//! # Example
//!
//! ```
//! use mimo_math::{CMatrix, Complex64, svd::Svd};
//!
//! // A 2x3 "channel" matrix.
//! let h = CMatrix::from_fn(2, 3, |r, c| Complex64::new((r + c) as f64, r as f64 - c as f64));
//! let svd = Svd::compute(&h);
//! let reconstructed = svd.reconstruct();
//! assert!(h.sub(&reconstructed).frobenius_norm() < 1e-9);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod complex;
pub mod env;
pub mod kernel;
pub mod matrix;
pub mod qr;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
pub mod solve;
pub mod svd;
pub mod workspace;

pub use complex::Complex64;
pub use kernel::int8::Int8Kernel;
pub use kernel::{Kernel, KernelChoice};
pub use matrix::CMatrix;
pub use workspace::Workspace;

/// Numerical tolerance used across the crate for "is approximately zero" checks.
pub const EPS: f64 = 1e-12;

/// Returns `true` when two floating-point numbers are within `tol` of each other.
///
/// This is a plain absolute-difference comparison; it is meant for test code and
/// small tolerance checks, not a general ULP-aware comparison.
///
/// ```
/// assert!(mimo_math::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!mimo_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_behaves() {
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(approx_eq(1.0, 1.0000000001, 1e-6));
        assert!(!approx_eq(1.0, 2.0, 0.5));
    }
}
