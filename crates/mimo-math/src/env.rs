//! Centralized parsing for the `SPLITBEAM_*` environment knobs.
//!
//! Every runtime knob in the workspace (`SPLITBEAM_KERNEL`,
//! `SPLITBEAM_SHARDS`, `SPLITBEAM_JITTER_NS`, `SPLITBEAM_STREAMING`, the
//! fault-injection family, the bench workload sizes, …) is a string in the
//! process environment, and every consumer historically re-implemented the
//! same three lines of `var → trim → parse` with slightly different
//! whitespace and error handling. This module is the single implementation
//! they all share.
//!
//! # Malformed values
//!
//! The contract, uniformly: **unset, blank, and malformed values all fall
//! back to the caller's default.** A typo in a knob can therefore never abort
//! a run or silently flip a boolean on — `SPLITBEAM_SHARDS=fuor` behaves
//! exactly like an unset `SPLITBEAM_SHARDS`. The one intentional asymmetry is
//! [`flag`], where *only* the literal truthy spellings enable a feature, so a
//! malformed value keeps the feature off. Each behavior is pinned by a test
//! below.

use std::str::FromStr;

/// The raw value of `name`, trimmed; `None` when the variable is unset,
/// non-UTF-8, or blank.
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Parses `name` as a `T`; `None` when unset, blank, or malformed.
pub fn parse<T: FromStr>(name: &str) -> Option<T> {
    raw(name).and_then(|v| v.parse().ok())
}

/// Parses `name` as a `T`, falling back to `default` when unset, blank, or
/// malformed.
pub fn parse_or<T: FromStr>(name: &str, default: T) -> T {
    parse(name).unwrap_or(default)
}

/// Truthiness of `name`: `1` or `true` (case-insensitive, trimmed) is `true`;
/// unset, blank, and *everything else* — including typos like `ture` — is
/// `false`, so a malformed value can never switch a feature on.
pub fn flag(name: &str) -> bool {
    matches!(
        raw(name).map(|v| v.to_ascii_lowercase()).as_deref(),
        Some("1") | Some("true")
    )
}

/// Parses `name` as a comma-separated list of `T`. `None` when the variable
/// is unset or blank, or when **any** element is malformed — a half-valid
/// list falls back whole rather than being silently truncated.
pub fn parse_list<T: FromStr>(name: &str) -> Option<Vec<T>> {
    let spec = raw(name)?;
    let items: Vec<T> = spec
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<Vec<T>>>()?;
    if items.is_empty() {
        None
    } else {
        Some(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a variable name unique to itself so the suite is safe
    // under cargo's default parallel test execution.

    #[test]
    fn raw_trims_and_drops_blank() {
        std::env::set_var("SPLITBEAM_ENVTEST_RAW", "  hello ");
        assert_eq!(raw("SPLITBEAM_ENVTEST_RAW").as_deref(), Some("hello"));
        std::env::set_var("SPLITBEAM_ENVTEST_RAW_BLANK", "   ");
        assert_eq!(raw("SPLITBEAM_ENVTEST_RAW_BLANK"), None);
        assert_eq!(raw("SPLITBEAM_ENVTEST_RAW_UNSET"), None);
    }

    #[test]
    fn parse_or_falls_back_on_malformed() {
        std::env::set_var("SPLITBEAM_ENVTEST_USIZE", "42");
        assert_eq!(parse_or::<usize>("SPLITBEAM_ENVTEST_USIZE", 7), 42);
        // The historical failure mode this module exists to pin down: a typo
        // must behave exactly like an unset variable.
        std::env::set_var("SPLITBEAM_ENVTEST_TYPO", "fuor");
        assert_eq!(parse_or::<usize>("SPLITBEAM_ENVTEST_TYPO", 7), 7);
        assert_eq!(parse::<usize>("SPLITBEAM_ENVTEST_TYPO"), None);
        std::env::set_var("SPLITBEAM_ENVTEST_NEG", "-3");
        assert_eq!(parse_or::<usize>("SPLITBEAM_ENVTEST_NEG", 7), 7);
        assert_eq!(parse_or::<i64>("SPLITBEAM_ENVTEST_NEG", 7), -3);
        std::env::set_var("SPLITBEAM_ENVTEST_F64", " 0.25 ");
        assert_eq!(parse_or::<f64>("SPLITBEAM_ENVTEST_F64", 0.0), 0.25);
        assert_eq!(parse_or::<u64>("SPLITBEAM_ENVTEST_UNSET", 9), 9);
    }

    #[test]
    fn flag_accepts_only_literal_truthy_spellings() {
        for (value, want) in [
            ("1", true),
            ("true", true),
            (" TRUE ", true),
            ("0", false),
            ("false", false),
            ("yes", false),
            ("on", false),
            ("ture", false), // malformed stays off
            ("", false),
        ] {
            std::env::set_var("SPLITBEAM_ENVTEST_FLAG", value);
            assert_eq!(flag("SPLITBEAM_ENVTEST_FLAG"), want, "value {value:?}");
        }
        assert!(!flag("SPLITBEAM_ENVTEST_FLAG_UNSET"));
    }

    #[test]
    fn parse_list_is_all_or_nothing() {
        std::env::set_var("SPLITBEAM_ENVTEST_LIST", "0.05, 0.4");
        assert_eq!(
            parse_list::<f64>("SPLITBEAM_ENVTEST_LIST"),
            Some(vec![0.05, 0.4])
        );
        // One malformed element poisons the whole list.
        std::env::set_var("SPLITBEAM_ENVTEST_LIST_BAD", "0.05, x");
        assert_eq!(parse_list::<f64>("SPLITBEAM_ENVTEST_LIST_BAD"), None);
        assert_eq!(parse_list::<f64>("SPLITBEAM_ENVTEST_LIST_UNSET"), None);
    }
}
