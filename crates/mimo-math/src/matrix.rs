//! Dense complex matrices.
//!
//! [`CMatrix`] stores a row-major `Vec<Complex64>`. Products come in two
//! flavors: the allocating convenience methods ([`CMatrix::matmul`],
//! [`CMatrix::hermitian`] + multiply) and the write-into kernels
//! ([`CMatrix::matmul_into`], [`CMatrix::hermitian_matmul_into`],
//! [`CMatrix::matvec_into`]) that reuse a caller-owned output buffer and run a
//! cache-blocked inner loop over the row-major storage — the building blocks of
//! the allocation-free per-subcarrier pipeline. The inner loops dispatch
//! through [`crate::kernel`]: under the scalar backend the blocked kernels
//! accumulate in exactly the same floating-point order as the naive reference
//! (`crate::reference::matmul_naive`), so results are bit-identical; the AVX2
//! backend agrees within FMA rounding.

use crate::complex::Complex64;
use crate::kernel::{self, Kernel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major complex matrix.
///
/// ```
/// use mimo_math::{CMatrix, Complex64};
/// let eye = CMatrix::identity(3);
/// let a = CMatrix::from_fn(3, 3, |r, c| Complex64::new((r * 3 + c) as f64, 0.0));
/// assert_eq!(a.matmul(&eye), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a `rows x cols` generalized identity (ones on the main diagonal).
    ///
    /// This corresponds to the `I_{c x d}` notation of the paper (Section III-A).
    pub fn generalized_identity(rows: usize, cols: usize) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows.min(cols) {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from a row-major slice of entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex64]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Read-only access to the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Returns the entry at `(r, c)` or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<Complex64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Extracts column `c` as a vector of length `rows`.
    ///
    /// # Panics
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<Complex64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Extracts row `r` as a vector of length `cols`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> Vec<Complex64> {
        assert!(r < self.rows, "row index out of bounds");
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// Overwrites column `c` with `values`.
    ///
    /// # Panics
    /// Panics if `c >= cols` or `values.len() != rows`.
    pub fn set_column(&mut self, c: usize, values: &[Complex64]) {
        assert!(c < self.cols, "column index out of bounds");
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (r, &v) in values.iter().enumerate() {
            self[(r, c)] = v;
        }
    }

    /// Returns the sub-matrix formed by the first `n` columns.
    ///
    /// This is how the 802.11 beamforming matrix `V` is obtained from the full
    /// right-singular-vector matrix `Z` (the first `Nss` columns).
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > cols`.
    pub fn first_columns(&self, n: usize) -> CMatrix {
        assert!(n > 0 && n <= self.cols, "invalid number of columns");
        CMatrix::from_fn(self.rows, n, |r, c| self[(r, c)])
    }

    /// Matrix transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Hermitian (conjugate) transpose.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Reshapes this matrix to `rows x cols` with all entries zero, reusing the
    /// existing storage when it is large enough.
    ///
    /// This is the buffer-recycling primitive behind the `_into` kernels: a
    /// long-lived output matrix reaches its high-water capacity once and is
    /// never reallocated afterwards.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex64::ZERO);
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into `out` (reshaped as needed, its
    /// storage reused), using the runtime-selected kernel backend
    /// ([`crate::kernel::selected`]).
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul_into(&self, rhs: &CMatrix, out: &mut CMatrix) {
        self.matmul_into_with(rhs, out, kernel::selected());
    }

    /// [`CMatrix::matmul_into`] with an explicit kernel backend — the seam the
    /// dispatch-parity tests and per-kernel benchmarks use.
    ///
    /// The inner loop is blocked over the output columns so wide right-hand
    /// sides stream through cache line by line; for each output entry the
    /// `k`-accumulation order matches the naive triple loop exactly. Under
    /// [`Kernel::Scalar`] results are bit-identical to
    /// `reference::matmul_naive`; the AVX2 backend fuses the complex
    /// multiply-add and agrees within normal FMA rounding.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul_into_with(&self, rhs: &CMatrix, out: &mut CMatrix, k: Kernel) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        const COL_BLOCK: usize = 128;
        let p = rhs.cols;
        out.reshape_zeroed(self.rows, p);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let out_row = &mut out.data[r * p..(r + 1) * p];
            let mut cb = 0;
            while cb < p {
                let ce = (cb + COL_BLOCK).min(p);
                for (ki, &a) in a_row.iter().enumerate() {
                    if a.norm_sqr() == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[ki * p + cb..ki * p + ce];
                    kernel::caxpy(k, a, rhs_row, &mut out_row[cb..ce]);
                }
                cb = ce;
            }
        }
    }

    /// Hermitian product `self^H * rhs` written into `out`, without
    /// materializing the conjugate transpose, using the runtime-selected
    /// kernel backend.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn hermitian_matmul_into(&self, rhs: &CMatrix, out: &mut CMatrix) {
        self.hermitian_matmul_into_with(rhs, out, kernel::selected());
    }

    /// [`CMatrix::hermitian_matmul_into`] with an explicit kernel backend.
    ///
    /// Equivalent to `self.hermitian().matmul(rhs)` — bit-identical under
    /// [`Kernel::Scalar`], since the accumulation order is preserved — but
    /// allocation-free and with a single pass over `self`'s storage.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn hermitian_matmul_into_with(&self, rhs: &CMatrix, out: &mut CMatrix, k: Kernel) {
        assert_eq!(
            self.rows, rhs.rows,
            "hermitian matmul dimension mismatch: ({}x{})^H * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        const COL_BLOCK: usize = 128;
        let p = rhs.cols;
        out.reshape_zeroed(self.cols, p);
        for r in 0..self.cols {
            let out_row = &mut out.data[r * p..(r + 1) * p];
            let mut cb = 0;
            while cb < p {
                let ce = (cb + COL_BLOCK).min(p);
                for ki in 0..self.rows {
                    let a = self.data[ki * self.cols + r].conj();
                    if a.norm_sqr() == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[ki * p + cb..ki * p + ce];
                    kernel::caxpy(k, a, rhs_row, &mut out_row[cb..ce]);
                }
                cb = ce;
            }
        }
    }

    /// Hermitian product `self^H * rhs` (allocating convenience form of
    /// [`CMatrix::hermitian_matmul_into`]).
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn hermitian_matmul(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, rhs.cols);
        self.hermitian_matmul_into(rhs, &mut out);
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix–vector product `self * v` written into `out` (cleared and
    /// refilled, its storage reused).
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn matvec_into(&self, v: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        out.clear();
        out.extend((0..self.rows).map(|r| {
            (0..self.cols)
                .map(|c| self[(r, c)] * v[c])
                .sum::<Complex64>()
        }));
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_real(&self, k: f64) -> CMatrix {
        self.scale(Complex64::from_real(k))
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus, useful as an infinity-like norm in tests.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Returns `true` when `self^H * self` is the identity within `tol`
    /// (i.e. the columns are orthonormal).
    pub fn is_unitary_columns(&self, tol: f64) -> bool {
        let gram = self.hermitian_matmul(self);
        let eye = CMatrix::identity(self.cols);
        gram.sub(&eye).max_abs() <= tol
    }

    /// Flattens the matrix to interleaved real components, real part first:
    /// `[re(a_00), im(a_00), re(a_01), ...]`.
    ///
    /// This is the "decouple real and complex components and treat them as a
    /// double-sized real matrix" step of Section IV-D, used to feed complex CSI
    /// into the real-valued DNNs.
    pub fn to_real_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.data.len() * 2);
        for z in &self.data {
            out.push(z.re);
            out.push(z.im);
        }
        out
    }

    /// Inverse of [`CMatrix::to_real_vec`]: rebuilds a `rows x cols` complex matrix
    /// from interleaved real components.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols * 2`.
    pub fn from_real_vec(rows: usize, cols: usize, data: &[f64]) -> CMatrix {
        assert_eq!(
            data.len(),
            rows * cols * 2,
            "interleaved data length mismatch"
        );
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows * cols {
            m.data[i] = Complex64::new(data[2 * i], data[2 * i + 1]);
        }
        m
    }

    /// Horizontally concatenates `self` with `rhs` (`[self | rhs]`).
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hcat(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "hcat row mismatch");
        CMatrix::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                rhs[(r, c - self.cols)]
            }
        })
    }

    /// Vertically concatenates `self` on top of `rhs`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vcat(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.cols, "vcat column mismatch");
        CMatrix::from_fn(self.rows + rhs.rows, self.cols, |r, c| {
            if r < self.rows {
                self[(r, c)]
            } else {
                rhs[(r - self.rows, c)]
            }
        })
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize, seed: f64) -> CMatrix {
        CMatrix::from_fn(rows, cols, |r, c| {
            Complex64::new(
                (r as f64 + 1.0) * seed + c as f64,
                (c as f64 - r as f64) * 0.5,
            )
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = small_matrix(3, 3, 1.3);
        let eye = CMatrix::identity(3);
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn generalized_identity_shape() {
        let g = CMatrix::generalized_identity(4, 2);
        assert_eq!(g.shape(), (4, 2));
        assert_eq!(g[(0, 0)], Complex64::ONE);
        assert_eq!(g[(1, 1)], Complex64::ONE);
        assert_eq!(g[(2, 0)], Complex64::ZERO);
    }

    #[test]
    fn hermitian_is_conjugate_transpose() {
        let a = small_matrix(2, 3, 0.7);
        let h = a.hermitian();
        assert_eq!(h.shape(), (3, 2));
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(h[(c, r)], a[(r, c)].conj());
            }
        }
    }

    #[test]
    fn matmul_matches_manual_computation() {
        let a = CMatrix::from_rows(
            2,
            2,
            &[
                Complex64::new(1.0, 0.0),
                Complex64::new(0.0, 1.0),
                Complex64::new(2.0, 0.0),
                Complex64::new(1.0, 1.0),
            ],
        );
        let b = CMatrix::from_rows(
            2,
            2,
            &[
                Complex64::new(0.0, 1.0),
                Complex64::new(1.0, 0.0),
                Complex64::new(1.0, 0.0),
                Complex64::new(0.0, 0.0),
            ],
        );
        let c = a.matmul(&b);
        // c[0,0] = 1*(i) + i*1 = 2i
        assert_eq!(c[(0, 0)], Complex64::new(0.0, 2.0));
        // c[0,1] = 1*1 + i*0 = 1
        assert_eq!(c[(0, 1)], Complex64::new(1.0, 0.0));
    }

    #[test]
    fn matvec_agrees_with_matmul() {
        let a = small_matrix(3, 2, 0.9);
        let v = vec![Complex64::new(1.0, 1.0), Complex64::new(-2.0, 0.5)];
        let as_matrix = CMatrix::from_fn(2, 1, |r, _| v[r]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&as_matrix);
        for r in 0..3 {
            assert!((mv[r] - mm[(r, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn real_vec_roundtrip() {
        let a = small_matrix(2, 3, 1.1);
        let flat = a.to_real_vec();
        assert_eq!(flat.len(), 12);
        let back = CMatrix::from_real_vec(2, 3, &flat);
        assert_eq!(a, back);
    }

    #[test]
    fn concatenation_shapes_and_entries() {
        let a = small_matrix(2, 2, 1.0);
        let b = small_matrix(2, 3, 2.0);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(1, 4)], b[(1, 2)]);
        let c = small_matrix(3, 2, 0.5);
        let v = a.vcat(&c);
        assert_eq!(v.shape(), (5, 2));
        assert_eq!(v[(4, 1)], c[(2, 1)]);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let eye = CMatrix::identity(4);
        assert!((eye.frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn first_columns_extracts_prefix() {
        let a = small_matrix(3, 3, 1.0);
        let v = a.first_columns(2);
        assert_eq!(v.shape(), (3, 2));
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(v[(r, c)], a[(r, c)]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = small_matrix(2, 3, 1.0);
        let b = small_matrix(2, 3, 1.0);
        let _ = a.matmul(&b);
    }

    #[test]
    fn identity_is_unitary() {
        assert!(CMatrix::identity(5).is_unitary_columns(1e-12));
        let not_unitary = small_matrix(3, 3, 2.0);
        assert!(!not_unitary.is_unitary_columns(1e-6));
    }

    #[test]
    fn into_kernels_match_naive_on_edge_shapes() {
        use crate::kernel::Kernel;
        use crate::reference::{hermitian_matmul_naive, matmul_naive};
        // Includes non-square and 1xN / Nx1 shapes. The scalar backend is the
        // bit-exactness reference; the comparison pins it explicitly so the
        // test holds regardless of what SPLITBEAM_KERNEL dispatched.
        for (m, k, n) in [
            (1, 1, 1),
            (1, 4, 1),
            (4, 1, 4),
            (1, 3, 5),
            (5, 3, 1),
            (3, 8, 2),
        ] {
            let a = small_matrix(m, k, 1.7);
            let b = small_matrix(k, n, 0.6);
            let mut out = CMatrix::zeros(1, 1);
            a.matmul_into_with(&b, &mut out, Kernel::Scalar);
            assert_eq!(out, matmul_naive(&a, &b), "matmul {m}x{k}*{k}x{n}");

            let ah = small_matrix(k, m, 0.9);
            let mut hout = CMatrix::zeros(1, 1);
            ah.hermitian_matmul_into_with(&b, &mut hout, Kernel::Scalar);
            assert_eq!(
                hout,
                hermitian_matmul_naive(&ah, &b),
                "hermitian {k}x{m}^H*{k}x{n}"
            );
        }
    }

    #[test]
    fn simd_backend_matches_scalar_within_tolerance() {
        use crate::kernel::{avx2_fma_available, Kernel};
        if !avx2_fma_available() {
            // Graceful fallback hosts: the dispatched path IS the scalar path.
            return;
        }
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (4, 4, 4), (3, 8, 9), (8, 8, 130)] {
            let a = small_matrix(m, k, 1.3);
            let b = small_matrix(k, n, 0.8);
            let mut scalar = CMatrix::zeros(1, 1);
            let mut simd = CMatrix::zeros(1, 1);
            a.matmul_into_with(&b, &mut scalar, Kernel::Scalar);
            a.matmul_into_with(&b, &mut simd, Kernel::Avx2Fma);
            assert!(
                scalar.sub(&simd).max_abs() <= 1e-10 * scalar.max_abs().max(1.0),
                "matmul simd drift {m}x{k}x{n}"
            );

            let ah = small_matrix(k, m, 0.9);
            ah.hermitian_matmul_into_with(&b, &mut scalar, Kernel::Scalar);
            ah.hermitian_matmul_into_with(&b, &mut simd, Kernel::Avx2Fma);
            assert!(
                scalar.sub(&simd).max_abs() <= 1e-10 * scalar.max_abs().max(1.0),
                "hermitian simd drift {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn reshape_zeroed_reuses_storage() {
        let mut m = CMatrix::zeros(8, 8);
        let ptr = m.as_slice().as_ptr();
        m.reshape_zeroed(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(
            m.as_slice().as_ptr(),
            ptr,
            "shrinking reshape must reuse the allocation"
        );
        assert!(m.as_slice().iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let a = small_matrix(3, 2, 1.1);
        let v = vec![Complex64::new(0.3, -0.2), Complex64::new(1.5, 0.4)];
        let mut out = Vec::new();
        a.matvec_into(&v, &mut out);
        assert_eq!(out, a.matvec(&v));
        let cap = out.capacity();
        a.matvec_into(&v, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    proptest! {
        #[test]
        fn prop_matmul_into_matches_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                                          seed in 0.1f64..10.0) {
            let a = small_matrix(m, k, seed);
            let b = small_matrix(k, n, seed + 0.41);
            let mut out = CMatrix::zeros(1, 1);
            a.matmul_into_with(&b, &mut out, crate::kernel::Kernel::Scalar);
            prop_assert_eq!(out, crate::reference::matmul_naive(&a, &b));
        }

        #[test]
        fn prop_hermitian_matmul_into_matches_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                                                    seed in 0.1f64..10.0) {
            let a = small_matrix(m, k, seed);
            let b = small_matrix(m, n, seed + 0.17);
            let mut out = CMatrix::zeros(1, 1);
            a.hermitian_matmul_into_with(&b, &mut out, crate::kernel::Kernel::Scalar);
            prop_assert_eq!(out, crate::reference::hermitian_matmul_naive(&a, &b));
        }

        #[test]
        fn prop_simd_matmul_parity(m in 1usize..6, k in 1usize..9, n in 1usize..9,
                                   seed in 0.1f64..10.0) {
            use crate::kernel::{avx2_fma_available, Kernel};
            if avx2_fma_available() {
                let a = small_matrix(m, k, seed);
                let b = small_matrix(k, n, seed + 0.29);
                let mut scalar = CMatrix::zeros(1, 1);
                let mut simd = CMatrix::zeros(1, 1);
                a.matmul_into_with(&b, &mut scalar, Kernel::Scalar);
                a.matmul_into_with(&b, &mut simd, Kernel::Avx2Fma);
                prop_assert!(scalar.sub(&simd).max_abs() <= 1e-9 * scalar.max_abs().max(1.0));
            }
        }

        #[test]
        fn prop_transpose_involution(rows in 1usize..5, cols in 1usize..5, seed in 0.1f64..10.0) {
            let a = small_matrix(rows, cols, seed);
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn prop_hermitian_of_product(n in 1usize..4, seed in 0.1f64..5.0) {
            // (AB)^H == B^H A^H
            let a = small_matrix(n, n, seed);
            let b = small_matrix(n, n, seed + 0.3);
            let lhs = a.matmul(&b).hermitian();
            let rhs = b.hermitian().matmul(&a.hermitian());
            prop_assert!(lhs.sub(&rhs).max_abs() < 1e-9);
        }

        #[test]
        fn prop_add_commutes(n in 1usize..5, seed in 0.1f64..5.0) {
            let a = small_matrix(n, n, seed);
            let b = small_matrix(n, n, seed * 2.0);
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_frobenius_triangle_inequality(n in 1usize..5, s1 in 0.1f64..5.0, s2 in 0.1f64..5.0) {
            let a = small_matrix(n, n, s1);
            let b = small_matrix(n, n, s2);
            prop_assert!(a.add(&b).frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
        }
    }
}
