//! Runtime-dispatched SIMD kernel backend.
//!
//! Every hot inner loop of the workspace (complex matmul/axpy, the LU
//! elimination and MMSE filter of [`crate::solve`], the dense f32 GEMM of the
//! `neural` crate, and the fused dequantize→tail kernel of `splitbeam`) funnels
//! through the primitives in this module. Each primitive exists in two
//! implementations:
//!
//! * **scalar** — byte-for-byte the historical loops. Selecting
//!   [`Kernel::Scalar`] reproduces the pre-dispatch outputs bit-identically.
//! * **AVX2+FMA** — `core::arch::x86_64` vector code, selected at runtime only
//!   when the CPU reports both `avx2` and `fma`. FMA contracts the
//!   multiply-add, so results differ from scalar by normal rounding (the
//!   parity tests document max-abs tolerances); per output element the
//!   accumulation order is still ascending `k` with a single accumulator
//!   chain, which keeps *different call shapes* of the same kernel (one row at
//!   a time vs a whole batch, fused vs unfused) bit-identical to each other.
//!
//! # Selection
//!
//! The active kernel is resolved once and cached:
//!
//! 1. a programmatic override set via [`set_kernel`] wins,
//! 2. otherwise the `SPLITBEAM_KERNEL` environment variable is consulted
//!    (`scalar` forces the fallback, `auto` — or anything else, or unset —
//!    picks the best available),
//! 3. `auto` resolves to [`Kernel::Avx2Fma`] only when the host CPU supports
//!    AVX2 and FMA; on every other host it degrades to [`Kernel::Scalar`].
//!
//! Hot paths call [`selected`] once per kernel invocation (an atomic load) and
//! pass the result down; benchmarks and parity tests bypass the global state
//! entirely by passing an explicit [`Kernel`] to the primitives.
//!
//! A third tier lives in [`int8`]: integer `u8 x i8 -> i32` GEMM arms for
//! quantized tail weights (AVX-512 VNNI → AVX2 `maddubs` → scalar reference,
//! all bit-exact with each other), resolved by [`int8::selected_int8`] behind
//! the same override/environment seam. Blocking parameters for the SIMD arms
//! come from the one-shot startup probe in [`tune`] (`SPLITBEAM_TUNE=off`
//! pins the shipped constants).

use crate::complex::Complex64;
use std::sync::atomic::{AtomicU8, Ordering};

pub mod int8;
pub mod tune;

/// What the caller asked for (environment variable or [`set_kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Pick the fastest backend the CPU supports.
    Auto,
    /// Force the scalar reference kernels (bit-identical to the pre-SIMD code).
    Scalar,
}

/// A concrete kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Plain scalar loops — always available, the bit-exactness reference.
    Scalar,
    /// AVX2 + FMA vector kernels (x86_64 only, runtime-detected).
    Avx2Fma,
}

impl Kernel {
    /// Stable lower-snake name used in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2Fma => "avx2_fma",
        }
    }
}

/// Cached resolution of [`selected`]: 0 = unresolved, 1 = scalar, 2 = AVX2+FMA.
static RESOLVED: AtomicU8 = AtomicU8::new(0);
/// Programmatic override: 0 = none (use the environment), 1 = auto, 2 = scalar.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Returns `true` when the host CPU supports both AVX2 and FMA.
///
/// Detection is delegated to `std::is_x86_feature_detected!`, which caches its
/// own answer; on non-x86_64 targets this is constant `false`.
pub fn avx2_fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Parses a `SPLITBEAM_KERNEL` value. Only `scalar` forces the fallback;
/// `auto`, the empty string, and unknown values all mean "best available", so
/// a typo can never silently disable correctness (scalar and SIMD agree within
/// tolerance) — it merely fails to pin the kernel.
fn parse_choice(value: &str) -> KernelChoice {
    if value.trim().eq_ignore_ascii_case("scalar") {
        KernelChoice::Scalar
    } else {
        KernelChoice::Auto
    }
}

/// The kernel choice currently in force: the programmatic override if one was
/// set, otherwise the `SPLITBEAM_KERNEL` environment variable (default `auto`).
pub fn requested() -> KernelChoice {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => KernelChoice::Auto,
        2 => KernelChoice::Scalar,
        _ => crate::env::raw("SPLITBEAM_KERNEL")
            .map(|v| parse_choice(&v))
            .unwrap_or(KernelChoice::Auto),
    }
}

/// Resolves a choice against the host CPU.
fn resolve(choice: KernelChoice) -> Kernel {
    match choice {
        KernelChoice::Scalar => Kernel::Scalar,
        KernelChoice::Auto => {
            if avx2_fma_available() {
                Kernel::Avx2Fma
            } else {
                Kernel::Scalar
            }
        }
    }
}

/// The kernel backend all dispatched hot paths use right now.
///
/// Resolved once (override → environment → CPU detection) and cached; a single
/// relaxed atomic load afterwards.
pub fn selected() -> Kernel {
    match RESOLVED.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Avx2Fma,
        _ => {
            let kernel = resolve(requested());
            RESOLVED.store(
                match kernel {
                    Kernel::Scalar => 1,
                    Kernel::Avx2Fma => 2,
                },
                Ordering::Relaxed,
            );
            kernel
        }
    }
}

/// Installs (or with `None` removes) a programmatic kernel override, replacing
/// whatever `SPLITBEAM_KERNEL` requested. Takes effect for all subsequent
/// dispatched calls in the process.
///
/// This is the programmatic form of the environment knob — benchmark drivers
/// use it to measure both backends in one process, and the bit-exactness suite
/// uses it to pin `scalar`. Note the override is process-global: concurrent
/// tests that flip it must serialize among themselves.
pub fn set_kernel(choice: Option<KernelChoice>) {
    OVERRIDE.store(
        match choice {
            None => 0,
            Some(KernelChoice::Auto) => 1,
            Some(KernelChoice::Scalar) => 2,
        },
        Ordering::Relaxed,
    );
    RESOLVED.store(0, Ordering::Relaxed);
    int8::reset_selected();
}

/// A report of how kernel dispatch resolved, for benchmark JSON and logs.
///
/// Besides the selected backends this records every CPU feature the dispatch
/// chain *inspects* — including detected-but-unselected ones — so a bench
/// JSON always explains why a tier was not taken on its host (e.g. AVX-512F
/// present but VNNI absent pins the int8 tier to `avx2_maddubs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchReport {
    /// What was requested (`auto` or `scalar`).
    pub requested: &'static str,
    /// The f32/complex backend actually in use.
    pub selected: &'static str,
    /// The integer (quantized-weight) backend actually in use.
    pub selected_int8: &'static str,
    /// Whether the host CPU supports AVX2+FMA at all.
    pub avx2_fma_available: bool,
    /// Whether the host CPU reports AVX-512F (foundation).
    pub avx512f_available: bool,
    /// Whether the host CPU reports AVX-512BW.
    pub avx512bw_available: bool,
    /// Whether the full VNNI arm requirement (F+BW+VL+VNNI) is met.
    pub avx512_vnni_available: bool,
}

/// Snapshot of the current dispatch state.
pub fn dispatch_report() -> DispatchReport {
    DispatchReport {
        requested: match requested() {
            KernelChoice::Auto => "auto",
            KernelChoice::Scalar => "scalar",
        },
        selected: selected().name(),
        selected_int8: int8::selected_int8().name(),
        avx2_fma_available: avx2_fma_available(),
        avx512f_available: int8::avx512f_available(),
        avx512bw_available: int8::avx512bw_available(),
        avx512_vnni_available: int8::avx512_vnni_available(),
    }
}

// ---------------------------------------------------------------------------
// Complex f64 primitives (CMatrix products, LU elimination, MMSE filter).
// ---------------------------------------------------------------------------

/// `y += a * x` over complex slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn caxpy(kernel: Kernel, a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "caxpy length mismatch");
    match kernel {
        Kernel::Scalar => {
            for (o, &b) in y.iter_mut().zip(x.iter()) {
                *o += a * b;
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proves AVX2+FMA are present, and the lengths
        // were asserted equal above — the target-feature fn's only contract.
        Kernel::Avx2Fma if avx2_fma_available() => unsafe { caxpy_avx2(a, x, y) },
        #[allow(unreachable_patterns)]
        _ => caxpy(Kernel::Scalar, a, x, y),
    }
}

/// `y -= a * x` over complex slices (the LU elimination update).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn caxpy_sub(kernel: Kernel, a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "caxpy_sub length mismatch");
    match kernel {
        Kernel::Scalar => {
            for (o, &b) in y.iter_mut().zip(x.iter()) {
                let sub = a * b;
                *o -= sub;
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proves AVX2+FMA are present, and the lengths
        // were asserted equal above — the target-feature fn's only contract.
        Kernel::Avx2Fma if avx2_fma_available() => unsafe { caxpy_sub_avx2(a, x, y) },
        #[allow(unreachable_patterns)]
        _ => caxpy_sub(Kernel::Scalar, a, x, y),
    }
}

/// Conjugated dot product `sum_k x[k] * conj(y[k])` (the MMSE filter row).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn cdotc(kernel: Kernel, x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "cdotc length mismatch");
    match kernel {
        Kernel::Scalar => {
            let mut acc = Complex64::ZERO;
            for (&a, &b) in x.iter().zip(y.iter()) {
                acc += a * b.conj();
            }
            acc
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proves AVX2+FMA are present, and the lengths
        // were asserted equal above — the target-feature fn's only contract.
        Kernel::Avx2Fma if avx2_fma_available() => unsafe { cdotc_avx2(x, y) },
        #[allow(unreachable_patterns)]
        _ => cdotc(Kernel::Scalar, x, y),
    }
}

// ---------------------------------------------------------------------------
// Dense f32 primitives (neural GEMM, fused dequantize→tail kernel).
// ---------------------------------------------------------------------------

/// Dense f32 GEMM: `out += a * b` where `a` is `rows x m`, `b` is `m x n` and
/// `out` is `rows x n`, all row-major. `out` is typically pre-zeroed by the
/// caller (`+=` semantics make the kernel composable).
///
/// The scalar arm accumulates each output element over ascending `k` with
/// individually rounded adds and skips exact-zero `a` terms — per element
/// identical to the historical register-blocked panel kernels. The AVX2 arm
/// uses one FMA chain per output element (also ascending `k`), so any call
/// shape — whole batch, single row, fused variants — produces bit-identical
/// elements for identical inputs.
///
/// # Panics
/// Panics if the slice lengths disagree with the dimensions.
pub fn gemm_f32(kernel: Kernel, a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize) {
    assert_eq!(b.len(), m * n, "gemm_f32 rhs length mismatch");
    assert_eq!(a.len() % m.max(1), 0, "gemm_f32 lhs length mismatch");
    let rows = a.len().checked_div(m).unwrap_or(0);
    assert_eq!(out.len(), rows * n, "gemm_f32 out length mismatch");
    match kernel {
        Kernel::Scalar => {
            for (a_row, out_row) in a.chunks_exact(m).zip(out.chunks_exact_mut(n)) {
                for (k, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in out_row.iter_mut().zip(b[k * n..(k + 1) * n].iter()) {
                        *o += av * bv;
                    }
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proves AVX2+FMA are present; `rows`/`m`/`n`
        // describe `a`/`b`/`out` exactly per the asserts above.
        Kernel::Avx2Fma if avx2_fma_available() => unsafe {
            gemm_f32_avx2(a, b, out, rows, m, n, tune::params().f32_k_block)
        },
        #[allow(unreachable_patterns)]
        _ => gemm_f32(Kernel::Scalar, a, b, out, m, n),
    }
}

/// One GEMM row: `out_row += a_row * b` — [`gemm_f32`] with a single
/// left-hand row, used by the parity tests to pin that single-row and
/// batched calls agree bit-for-bit per kernel.
#[cfg(test)]
fn gemm_row_f32(kernel: Kernel, a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    let (m, n) = (a_row.len(), out_row.len());
    gemm_f32(kernel, a_row, b, out_row, m, n);
}

/// `y += a * x` over f32 slices; exact-zero `a` is a no-op (matching the
/// historical `axpy1_skip`).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn saxpy(kernel: Kernel, a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "saxpy length mismatch");
    if a == 0.0 {
        return;
    }
    match kernel {
        Kernel::Scalar => {
            for (o, &b) in y.iter_mut().zip(x.iter()) {
                *o += a * b;
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proves AVX2+FMA are present, and the lengths
        // were asserted equal above — the target-feature fn's only contract.
        Kernel::Avx2Fma if avx2_fma_available() => unsafe { saxpy_avx2(a, x, y) },
        #[allow(unreachable_patterns)]
        _ => saxpy(Kernel::Scalar, a, x, y),
    }
}

/// Dot product `sum_k x[k] * y[k]` over f32 slices.
///
/// The scalar arm is the historical sequential accumulation; the AVX2 arm uses
/// four independent vector accumulators and a horizontal reduction (different
/// association, tolerance-tested).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn sdot(kernel: Kernel, x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "sdot length mismatch");
    match kernel {
        Kernel::Scalar => {
            let mut acc = 0.0f32;
            for (&a, &b) in x.iter().zip(y.iter()) {
                acc += a * b;
            }
            acc
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proves AVX2+FMA are present, and the lengths
        // were asserted equal above — the target-feature fn's only contract.
        Kernel::Avx2Fma if avx2_fma_available() => unsafe { sdot_avx2(x, y) },
        #[allow(unreachable_patterns)]
        _ => sdot(Kernel::Scalar, x, y),
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex64;
    use core::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_fmadd_pd, _mm256_fmadd_ps, _mm256_fmaddsub_pd,
        _mm256_loadu_pd, _mm256_loadu_ps, _mm256_mul_pd, _mm256_permute_pd, _mm256_set1_pd,
        _mm256_set1_ps, _mm256_set_pd, _mm256_setzero_pd, _mm256_setzero_ps, _mm256_storeu_pd,
        _mm256_storeu_ps, _mm256_sub_pd,
    };

    /// Complexes per 256-bit vector (2 × f64 re/im pairs).
    const CPV: usize = 2;

    /// Sums the four f64 lanes of a vector.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), v);
            (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
        }
    }

    /// Computes the per-lane complex product `a * x` for one vector of two
    /// interleaved complexes: even lanes `ar*xr - ai*xi`, odd lanes
    /// `ar*xi + ai*xr` (the first product FMA-fused by `fmaddsub`).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn cmul_lanes(ar: __m256d, ai: __m256d, xv: __m256d) -> __m256d {
        let xswap = _mm256_permute_pd(xv, 0b0101);
        _mm256_fmaddsub_pd(ar, xv, _mm256_mul_pd(ai, xswap))
    }

    /// `y += a * x` (complex, interleaved f64). `Complex64` is `repr(C)`, so a
    /// complex slice is safely viewed as interleaved `re, im` f64 memory.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn caxpy_avx2(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let ar = _mm256_set1_pd(a.re);
            let ai = _mm256_set1_pd(a.im);
            let pairs = x.len() / CPV * CPV;
            let xp = x.as_ptr().cast::<f64>();
            let yp = y.as_mut_ptr().cast::<f64>();
            let mut i = 0;
            while i < pairs {
                let xv = _mm256_loadu_pd(xp.add(2 * i));
                let yv = _mm256_loadu_pd(yp.add(2 * i));
                _mm256_storeu_pd(yp.add(2 * i), _mm256_add_pd(yv, cmul_lanes(ar, ai, xv)));
                i += CPV;
            }
            for k in pairs..x.len() {
                y[k] += a * x[k];
            }
        }
    }

    /// `y -= a * x` (complex, interleaved f64).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn caxpy_sub_avx2(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let ar = _mm256_set1_pd(a.re);
            let ai = _mm256_set1_pd(a.im);
            let pairs = x.len() / CPV * CPV;
            let xp = x.as_ptr().cast::<f64>();
            let yp = y.as_mut_ptr().cast::<f64>();
            let mut i = 0;
            while i < pairs {
                let xv = _mm256_loadu_pd(xp.add(2 * i));
                let yv = _mm256_loadu_pd(yp.add(2 * i));
                _mm256_storeu_pd(yp.add(2 * i), _mm256_sub_pd(yv, cmul_lanes(ar, ai, xv)));
                i += CPV;
            }
            for k in pairs..x.len() {
                let sub = a * x[k];
                y[k] -= sub;
            }
        }
    }

    /// `sum_k x[k] * conj(y[k])` (complex, interleaved f64).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn cdotc_avx2(x: &[Complex64], y: &[Complex64]) -> Complex64 {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            // acc_direct lanes hold xr*yr / xi*yi products; their full sum is the
            // real part. acc_cross lanes hold xi*yr / xr*yi; the real part of the
            // cross term enters with +, the imaginary with -, giving xi*yr - xr*yi.
            let mut acc_direct = _mm256_setzero_pd();
            let mut acc_cross = _mm256_setzero_pd();
            let pairs = x.len() / CPV * CPV;
            let xp = x.as_ptr().cast::<f64>();
            let yp = y.as_ptr().cast::<f64>();
            let mut i = 0;
            while i < pairs {
                let xv = _mm256_loadu_pd(xp.add(2 * i));
                let yv = _mm256_loadu_pd(yp.add(2 * i));
                acc_direct = _mm256_fmadd_pd(xv, yv, acc_direct);
                let xswap = _mm256_permute_pd(xv, 0b0101);
                acc_cross = _mm256_fmadd_pd(xswap, yv, acc_cross);
                i += CPV;
            }
            let re = hsum_pd(acc_direct);
            let sign = _mm256_set_pd(-1.0, 1.0, -1.0, 1.0);
            let im = hsum_pd(_mm256_mul_pd(acc_cross, sign));
            let mut acc = Complex64::new(re, im);
            for k in pairs..x.len() {
                acc += x[k] * y[k].conj();
            }
            acc
        }
    }

    /// Dense f32 GEMM `out += a * b` (`a`: rows x m, `b`: m x n, `out`:
    /// rows x n, all row-major) — the 8-wide FMA microkernel.
    ///
    /// Same blocking discipline as the historical scalar panel kernel, with
    /// vector registers: the outer loop walks `k_block`-deep `k` blocks (so
    /// the corresponding `b` rows are streamed *sequentially* and reused
    /// across the whole batch from cache; the block depth comes from
    /// [`super::tune`], default 16), the middle loop walks 4-row panels of
    /// `a`/`out` (one loaded `b` vector feeds four FMA accumulators), and the
    /// inner loop runs 8 floats per instruction over `n`.
    ///
    /// Every output element accumulates as a single FMA chain over ascending
    /// `k`: the accumulator round-trips memory only between `k` blocks, and an
    /// f32 store/load is value-preserving, so results are independent of the
    /// blocking — single-row calls, batched calls, the fused dequantize→tail
    /// path, and every autotuned `k_block` all agree bit-for-bit.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_f32_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        rows: usize,
        m: usize,
        n: usize,
        k_block: usize,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            for k0 in (0..m).step_by(k_block.max(1)) {
                let k1 = (k0 + k_block.max(1)).min(m);
                let mut r = 0;
                while r + 4 <= rows {
                    gemm_panel4_avx2(
                        &a[r * m..(r + 4) * m],
                        b,
                        &mut out[r * n..(r + 4) * n],
                        m,
                        n,
                        k0,
                        k1,
                    );
                    r += 4;
                }
                while r < rows {
                    gemm_panel1_avx2(
                        &a[r * m..(r + 1) * m],
                        b,
                        &mut out[r * n..(r + 1) * n],
                        n,
                        k0,
                        k1,
                    );
                    r += 1;
                }
            }
        }
    }

    /// Four output rows over `k0..k1`: each loaded `b` vector feeds four
    /// accumulator chains (16 live accumulators at the 32-float unroll).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_panel4_avx2(
        a: &[f32],
        b: &[f32],
        o: &mut [f32],
        m: usize,
        n: usize,
        k0: usize,
        k1: usize,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let (a0, rest) = a.split_at(m);
            let (a1, rest) = rest.split_at(m);
            let (a2, a3) = rest.split_at(m);
            let bp = b.as_ptr();
            let op = o.as_mut_ptr();
            let mut j = 0;
            while j + 8 <= n {
                let mut acc0 = _mm256_loadu_ps(op.add(j));
                let mut acc1 = _mm256_loadu_ps(op.add(n + j));
                let mut acc2 = _mm256_loadu_ps(op.add(2 * n + j));
                let mut acc3 = _mm256_loadu_ps(op.add(3 * n + j));
                for k in k0..k1 {
                    let bv = _mm256_loadu_ps(bp.add(k * n + j));
                    acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.get_unchecked(k)), bv, acc0);
                    acc1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.get_unchecked(k)), bv, acc1);
                    acc2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.get_unchecked(k)), bv, acc2);
                    acc3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.get_unchecked(k)), bv, acc3);
                }
                _mm256_storeu_ps(op.add(j), acc0);
                _mm256_storeu_ps(op.add(n + j), acc1);
                _mm256_storeu_ps(op.add(2 * n + j), acc2);
                _mm256_storeu_ps(op.add(3 * n + j), acc3);
                j += 8;
            }
            while j < n {
                for (row, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
                    let slot = op.add(row * n + j);
                    let mut acc = *slot;
                    for k in k0..k1 {
                        acc = ar.get_unchecked(k).mul_add(*bp.add(k * n + j), acc);
                    }
                    *slot = acc;
                }
                j += 1;
            }
        }
    }

    /// One output row over `k0..k1`, 16 floats (two accumulators) per step.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_panel1_avx2(
        a: &[f32],
        b: &[f32],
        o: &mut [f32],
        n: usize,
        k0: usize,
        k1: usize,
    ) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let bp = b.as_ptr();
            let op = o.as_mut_ptr();
            let mut j = 0;
            while j + 16 <= n {
                let mut acc0 = _mm256_loadu_ps(op.add(j));
                let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
                for k in k0..k1 {
                    let av = _mm256_set1_ps(*a.get_unchecked(k));
                    let bk = bp.add(k * n + j);
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk.add(8)), acc1);
                }
                _mm256_storeu_ps(op.add(j), acc0);
                _mm256_storeu_ps(op.add(j + 8), acc1);
                j += 16;
            }
            while j + 8 <= n {
                let mut acc = _mm256_loadu_ps(op.add(j));
                for k in k0..k1 {
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(*a.get_unchecked(k)),
                        _mm256_loadu_ps(bp.add(k * n + j)),
                        acc,
                    );
                }
                _mm256_storeu_ps(op.add(j), acc);
                j += 8;
            }
            while j < n {
                let mut acc = *op.add(j);
                for k in k0..k1 {
                    acc = a.get_unchecked(k).mul_add(*bp.add(k * n + j), acc);
                }
                *op.add(j) = acc;
                j += 1;
            }
        }
    }

    /// `y += a * x` (f32), FMA per element; scalar tail with `mul_add`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn saxpy_avx2(a: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let av = _mm256_set1_ps(a);
            let n8 = x.len() / 8 * 8;
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i < n8 {
                let acc =
                    _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
                _mm256_storeu_ps(yp.add(i), acc);
                i += 8;
            }
            for k in n8..x.len() {
                y[k] = a.mul_add(x[k], y[k]);
            }
        }
    }

    /// f32 dot product with four independent accumulators.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn sdot_avx2(x: &[f32], y: &[f32]) -> f32 {
        // SAFETY: the caller upholds this fn's `# Safety` contract: the required target features are enabled and every pointer/shape argument describes the buffers exactly.
        unsafe {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let n32 = x.len() / 32 * 32;
            let xp = x.as_ptr();
            let yp = y.as_ptr();
            let mut i = 0;
            while i < n32 {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 8)),
                    _mm256_loadu_ps(yp.add(i + 8)),
                    acc1,
                );
                acc2 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 16)),
                    _mm256_loadu_ps(yp.add(i + 16)),
                    acc2,
                );
                acc3 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(i + 24)),
                    _mm256_loadu_ps(yp.add(i + 24)),
                    acc3,
                );
                i += 32;
            }
            let mut n8 = n32;
            while n8 + 8 <= x.len() {
                acc0 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(n8)),
                    _mm256_loadu_ps(yp.add(n8)),
                    acc0,
                );
                n8 += 8;
            }
            let folded = {
                let mut lanes = [0.0f32; 8];
                let sum01 = {
                    let mut l0 = [0.0f32; 8];
                    let mut l1 = [0.0f32; 8];
                    _mm256_storeu_ps(l0.as_mut_ptr(), acc0);
                    _mm256_storeu_ps(l1.as_mut_ptr(), acc1);
                    for (a, b) in l0.iter_mut().zip(l1.iter()) {
                        *a += b;
                    }
                    l0
                };
                let mut l2 = [0.0f32; 8];
                let mut l3 = [0.0f32; 8];
                _mm256_storeu_ps(l2.as_mut_ptr(), acc2);
                _mm256_storeu_ps(l3.as_mut_ptr(), acc3);
                for i in 0..8 {
                    lanes[i] = sum01[i] + (l2[i] + l3[i]);
                }
                lanes
            };
            let mut acc = folded.iter().sum::<f32>();
            for k in n8..x.len() {
                acc = x[k].mul_add(y[k], acc);
            }
            acc
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{caxpy_avx2, caxpy_sub_avx2, cdotc_avx2, gemm_f32_avx2, saxpy_avx2, sdot_avx2};

#[cfg(test)]
mod tests {
    use super::*;

    fn complex_series(n: usize, seed: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                Complex64::new(
                    ((i as f64) * 0.37 + seed).sin(),
                    ((i as f64) * 0.21 - seed).cos(),
                )
            })
            .collect()
    }

    fn f32_series(n: usize, seed: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.173 + seed).sin() * 0.5)
            .collect()
    }

    /// Both kernels, but AVX2 only on hosts that have it.
    fn kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar];
        if avx2_fma_available() {
            ks.push(Kernel::Avx2Fma);
        }
        ks
    }

    #[test]
    fn resolve_is_pure_and_total() {
        assert_eq!(resolve(KernelChoice::Scalar), Kernel::Scalar);
        let auto = resolve(KernelChoice::Auto);
        if avx2_fma_available() {
            assert_eq!(auto, Kernel::Avx2Fma);
        } else {
            assert_eq!(auto, Kernel::Scalar);
        }
    }

    #[test]
    fn parse_choice_only_scalar_forces_fallback() {
        assert_eq!(parse_choice("scalar"), KernelChoice::Scalar);
        assert_eq!(parse_choice(" SCALAR "), KernelChoice::Scalar);
        assert_eq!(parse_choice("auto"), KernelChoice::Auto);
        assert_eq!(parse_choice(""), KernelChoice::Auto);
        assert_eq!(parse_choice("sse9000"), KernelChoice::Auto);
    }

    #[test]
    fn dispatch_report_is_consistent() {
        let report = dispatch_report();
        assert!(["auto", "scalar"].contains(&report.requested));
        assert!(["scalar", "avx2_fma"].contains(&report.selected));
        assert!(["scalar", "avx2_maddubs", "avx512_vnni"].contains(&report.selected_int8));
        if !report.avx2_fma_available {
            assert_eq!(report.selected, "scalar");
        }
        // Detected-but-unselected features must still be reported: the report
        // explains *why* a tier was not taken, so the availability bits are
        // filled regardless of what got selected.
        if !report.avx512_vnni_available {
            assert_ne!(report.selected_int8, "avx512_vnni");
        }
        if report.requested == "scalar" {
            assert_eq!(report.selected_int8, "scalar");
        }
        assert_eq!(Kernel::Scalar.name(), "scalar");
        assert_eq!(Kernel::Avx2Fma.name(), "avx2_fma");
    }

    #[test]
    fn f32_gemm_results_are_independent_of_the_k_block() {
        // The autotune safety property: any probed k_block produces
        // bit-identical f32 results (single FMA chain per element, lossless
        // accumulator round-trips between blocks).
        #[cfg(target_arch = "x86_64")]
        if avx2_fma_available() {
            let (rows, m, n) = (6usize, 50usize, 33usize);
            let a = f32_series(rows * m, 0.7);
            let b = f32_series(m * n, 1.3);
            let mut want = vec![0.0f32; rows * n];
            unsafe { avx2::gemm_f32_avx2(&a, &b, &mut want, rows, m, n, 16) };
            for k_block in [1usize, 8, 17, 32, 64, 1000] {
                let mut out = vec![0.0f32; rows * n];
                unsafe { avx2::gemm_f32_avx2(&a, &b, &mut out, rows, m, n, k_block) };
                let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits, want_bits, "k_block={k_block}");
            }
        }
    }

    #[test]
    fn caxpy_parity_across_kernels_and_lengths() {
        for n in [0usize, 1, 2, 3, 5, 8, 17] {
            let a = Complex64::new(0.7, -0.3);
            let x = complex_series(n, 1.0);
            let base = complex_series(n, 2.0);
            let mut expect = base.clone();
            for (o, &b) in expect.iter_mut().zip(x.iter()) {
                *o += a * b;
            }
            for k in kernels() {
                let mut y = base.clone();
                caxpy(k, a, &x, &mut y);
                for (got, want) in y.iter().zip(expect.iter()) {
                    assert!(
                        (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                        "caxpy {k:?} n={n}"
                    );
                }
                let mut y2 = base.clone();
                caxpy_sub(k, a, &x, &mut y2);
                let mut expect_sub = base.clone();
                for (o, &b) in expect_sub.iter_mut().zip(x.iter()) {
                    *o -= a * b;
                }
                for (got, want) in y2.iter().zip(expect_sub.iter()) {
                    assert!(
                        (got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12,
                        "caxpy_sub {k:?} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn cdotc_parity_across_kernels() {
        for n in [0usize, 1, 2, 5, 9, 33] {
            let x = complex_series(n, 0.4);
            let y = complex_series(n, 1.7);
            let want = cdotc(Kernel::Scalar, &x, &y);
            for k in kernels() {
                let got = cdotc(k, &x, &y);
                assert!(
                    (got.re - want.re).abs() < 1e-10 && (got.im - want.im).abs() < 1e-10,
                    "cdotc {k:?} n={n}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn gemm_parity_across_kernels_and_shapes() {
        for (m, n) in [(1, 1), (3, 7), (8, 8), (5, 33), (16, 40), (7, 70)] {
            let a = f32_series(2 * m, 0.3);
            let b = f32_series(m * n, 1.1);
            let mut want = vec![0.0f32; 2 * n];
            gemm_f32(Kernel::Scalar, &a, &b, &mut want, m, n);
            for k in kernels() {
                let mut out = vec![0.0f32; 2 * n];
                gemm_f32(k, &a, &b, &mut out, m, n);
                for (got, w) in out.iter().zip(want.iter()) {
                    assert!((got - w).abs() < 1e-4, "gemm {k:?} {m}x{n}: {got} vs {w}");
                }
            }
        }
    }

    #[test]
    fn gemm_row_and_batch_shapes_agree_bitwise_per_kernel() {
        // One row at a time must equal the batched call exactly — the property
        // the fused dequantize→tail path relies on. Six rows exercise the
        // 4-row AVX2 panel plus the single-row remainder path.
        const ROWS: usize = 6;
        let (m, n) = (37, 41);
        let a = f32_series(ROWS * m, 0.9);
        let b = f32_series(m * n, 0.2);
        for k in kernels() {
            let mut batched = vec![0.0f32; ROWS * n];
            gemm_f32(k, &a, &b, &mut batched, m, n);
            for r in 0..ROWS {
                let mut row = vec![0.0f32; n];
                gemm_row_f32(k, &a[r * m..(r + 1) * m], &b, &mut row);
                assert_eq!(row, batched[r * n..(r + 1) * n].to_vec(), "{k:?} row {r}");
            }
        }
    }

    #[test]
    fn saxpy_and_sdot_parity() {
        for n in [0usize, 1, 7, 8, 31, 64, 100] {
            let x = f32_series(n, 0.5);
            let base = f32_series(n, 2.5);
            for k in kernels() {
                let mut y = base.clone();
                saxpy(k, 0.37, &x, &mut y);
                for (i, (got, b)) in y.iter().zip(base.iter()).enumerate() {
                    let want = 0.37f32 * x[i] + b;
                    assert!((got - want).abs() < 1e-5, "saxpy {k:?} n={n} i={i}");
                }
                let mut y2 = base.clone();
                saxpy(k, 0.0, &x, &mut y2);
                assert_eq!(y2, base, "zero saxpy must be a no-op");

                let want = sdot(Kernel::Scalar, &x, &base);
                let got = sdot(k, &x, &base);
                assert!((got - want).abs() < 1e-4, "sdot {k:?} n={n}");
            }
        }
    }

    #[test]
    fn scalar_gemm_skips_exact_zero_terms() {
        // -0.0 in the accumulator must survive a zero a-term, exactly like the
        // historical axpy1_skip.
        let a = [0.0f32, 1.0];
        let b = [5.0f32, -0.0, 2.0, -0.0];
        let mut out = [-0.0f32, -0.0];
        gemm_row_f32(Kernel::Scalar, &a, &b, &mut out);
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1].to_bits(), (-0.0f32).to_bits());
    }
}
