//! Virtual-time frame stamps and the Eq. 7d deadline policy.
//!
//! The event-driven simulation core ([`crate::event`]) timestamps every wire
//! frame with its per-leg delay breakdown (head compute → medium queueing →
//! airtime → tail compute). The deadline-aware round closer in
//! [`crate::server`] classifies each stamped frame against the 10 ms Eq. 7d
//! budget **at round close** — on-time, late-but-usable, or past-budget — so
//! deadline violations are enforced where serving happens, not measured after
//! the fact.
//!
//! Everything here is integer nanoseconds ([`VirtualNs`]): summaries carrying
//! these stay `Eq`-comparable, which is what the lockstep bit-exactness
//! anchor (event driver with zero delays ≡ legacy drivers) relies on.

use splitbeam_hwsim::delay::{DelayBudget, EndToEndDelay};
use splitbeam_hwsim::event::{ns_to_s, s_to_ns, VirtualNs};

/// Virtual-time record of one ingested wire frame: when it reached the AP and
/// how long each leg of the trip took. The tail leg is the AP-side compute the
/// round closer will spend *after* the close — it is part of the Eq. 7d total
/// even though it has not happened yet at classification time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStamp {
    /// Virtual arrival time at the AP (last bit off the air).
    pub arrival_ns: VirtualNs,
    /// Station-side head compute time.
    pub head_ns: u64,
    /// Time spent queueing for the shared medium.
    pub queue_ns: u64,
    /// On-air time of the frame.
    pub air_ns: u64,
    /// AP-side tail compute time (spent at round close).
    pub tail_ns: u64,
}

impl FrameStamp {
    /// Total end-to-end delay of this report: head + queue + air + tail.
    pub fn total_ns(&self) -> u64 {
        self.head_ns + self.queue_ns + self.air_ns + self.tail_ns
    }

    /// Virtual time the report's sounding was born: arrival minus every leg
    /// that already happened (head, queue, air). Retransmissions inflate the
    /// queue leg by exactly their extra arrival delay, so the birth instant is
    /// stable across delivery attempts — the streaming watermark closer keys
    /// its per-frame deadline off this.
    pub fn birth_ns(&self) -> VirtualNs {
        self.arrival_ns
            .saturating_sub(self.head_ns + self.queue_ns + self.air_ns)
    }

    /// The stamp with `extra` nanoseconds of additional queueing (e.g. a
    /// stalled shard sitting on the frame before serving it). Identity at 0.
    pub fn with_extra_queue(&self, extra: u64) -> Self {
        Self {
            queue_ns: self.queue_ns + extra,
            ..*self
        }
    }

    /// The stamp as a floating-point [`EndToEndDelay`] breakdown.
    pub fn to_delay(&self) -> EndToEndDelay {
        EndToEndDelay {
            head_s: ns_to_s(self.head_ns),
            queue_s: ns_to_s(self.queue_ns),
            airtime_s: ns_to_s(self.air_ns),
            tail_s: ns_to_s(self.tail_ns),
        }
    }
}

/// How the deadline-aware round closer classified one station's feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// End-to-end delay within the Eq. 7d budget (inclusive) — served fresh.
    OnTime,
    /// Budget exceeded, but still inside the grace window: the report is the
    /// freshest the AP will get, so it is reconstructed and stored, but
    /// counted late — never silently as fresh.
    Late,
    /// Budget exceeded beyond the grace window: the report is useless by the
    /// time it could be served. Consumed without reconstruction.
    Expired,
}

/// The round closer's deadline: the Eq. 7d budget plus a grace window for
/// late-but-usable reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// The Eq. 7d end-to-end budget (10 ms by default), in virtual ns.
    pub budget_ns: u64,
    /// How far past the budget a report is still worth reconstructing. One
    /// sounding interval is the natural choice: beyond it the next report
    /// supersedes this one anyway.
    pub grace_ns: u64,
}

impl DeadlinePolicy {
    /// Policy from a [`DelayBudget`] and a grace window in seconds.
    pub fn new(budget: &DelayBudget, grace_s: f64) -> Self {
        Self {
            budget_ns: s_to_ns(budget.max_delay_s),
            grace_ns: s_to_ns(grace_s),
        }
    }

    /// The default Eq. 7d policy: 10 ms budget, one 10 ms sounding interval
    /// of grace.
    pub fn eq7d() -> Self {
        Self::new(&DelayBudget::default(), 0.01)
    }

    /// Classifies a report by its total end-to-end delay. The budget boundary
    /// is inclusive on both cuts, matching
    /// [`EndToEndDelay::within`](splitbeam_hwsim::delay::EndToEndDelay::within):
    /// a report landing exactly on the deadline is on time.
    pub fn classify(&self, total_ns: u64) -> FrameClass {
        if total_ns <= self.budget_ns {
            FrameClass::OnTime
        } else if total_ns <= self.budget_ns.saturating_add(self.grace_ns) {
            FrameClass::Late
        } else {
            FrameClass::Expired
        }
    }

    /// Absolute virtual instant by which a stamped report must be *served* to
    /// stay within the Eq. 7d budget: its sounding birth plus the budget. The
    /// streaming closer fires a micro-batch when its watermark can no longer
    /// wait past the oldest pending frame's service deadline.
    pub fn service_deadline_ns(&self, stamp: &FrameStamp) -> VirtualNs {
        stamp.birth_ns().saturating_add(self.budget_ns)
    }
}

/// Aggregate virtual-delay accounting of one closed round, summed over every
/// report that was reconstructed (on-time and late). Integer nanoseconds keep
/// round summaries `Eq`; the legacy lockstep drivers report all zeros (their
/// frames carry no timing), which is exactly what the zero-delay event driver
/// produces — the parity anchor extends to the delay fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundDelayStats {
    /// Summed head compute across served reports.
    pub head_ns: u64,
    /// Summed medium queueing across served reports.
    pub queue_ns: u64,
    /// Summed airtime across served reports.
    pub air_ns: u64,
    /// Summed tail compute across served reports.
    pub tail_ns: u64,
    /// Worst single-report end-to-end delay this round.
    pub worst_e2e_ns: u64,
}

impl RoundDelayStats {
    /// Folds one served report's stamp into the stats.
    pub fn record(&mut self, stamp: &FrameStamp) {
        self.head_ns += stamp.head_ns;
        self.queue_ns += stamp.queue_ns;
        self.air_ns += stamp.air_ns;
        self.tail_ns += stamp.tail_ns;
        self.worst_e2e_ns = self.worst_e2e_ns.max(stamp.total_ns());
    }

    /// Merges another shard's stats into this one.
    pub fn merge(&mut self, other: &RoundDelayStats) {
        self.head_ns += other.head_ns;
        self.queue_ns += other.queue_ns;
        self.air_ns += other.air_ns;
        self.tail_ns += other.tail_ns;
        self.worst_e2e_ns = self.worst_e2e_ns.max(other.worst_e2e_ns);
    }

    /// Summed total delay across all legs.
    pub fn total_ns(&self) -> u64 {
        self.head_ns + self.queue_ns + self.air_ns + self.tail_ns
    }

    /// Mean end-to-end delay in seconds over `served` reports (0 when none).
    pub fn mean_e2e_s(&self, served: usize) -> f64 {
        if served == 0 {
            0.0
        } else {
            ns_to_s(self.total_ns()) / served as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_totals_and_delay_breakdown() {
        let stamp = FrameStamp {
            arrival_ns: 9_000_000,
            head_ns: 1_000_000,
            queue_ns: 2_000_000,
            air_ns: 3_000_000,
            tail_ns: 4_000_000,
        };
        assert_eq!(stamp.total_ns(), 10_000_000);
        let delay = stamp.to_delay();
        assert!((delay.head_s - 1e-3).abs() < 1e-12);
        assert!((delay.queue_s - 2e-3).abs() < 1e-12);
        assert!((delay.airtime_s - 3e-3).abs() < 1e-12);
        assert!((delay.tail_s - 4e-3).abs() < 1e-12);
        assert!((delay.total_s() - 1e-2).abs() < 1e-12);
        assert_eq!(FrameStamp::default().total_ns(), 0);
    }

    /// The budget boundary is inclusive at both cuts, matching the PR 4
    /// `EndToEndDelay::within` semantics.
    #[test]
    fn classification_boundaries_are_inclusive() {
        let policy = DeadlinePolicy {
            budget_ns: 10_000_000,
            grace_ns: 5_000_000,
        };
        assert_eq!(policy.classify(0), FrameClass::OnTime);
        assert_eq!(policy.classify(10_000_000), FrameClass::OnTime);
        assert_eq!(policy.classify(10_000_001), FrameClass::Late);
        assert_eq!(policy.classify(15_000_000), FrameClass::Late);
        assert_eq!(policy.classify(15_000_001), FrameClass::Expired);
        assert_eq!(policy.classify(u64::MAX), FrameClass::Expired);
    }

    #[test]
    fn eq7d_policy_matches_the_paper_budget() {
        let policy = DeadlinePolicy::eq7d();
        assert_eq!(policy.budget_ns, 10_000_000);
        assert_eq!(policy.grace_ns, 10_000_000);
        assert_eq!(policy.classify(10_000_000), FrameClass::OnTime);
        assert_eq!(policy.classify(20_000_001), FrameClass::Expired);
    }

    /// `birth_ns` is invariant across retransmissions: a retry delivers later
    /// but the extra wait lands in the queue leg, so arrival − legs is stable.
    #[test]
    fn birth_is_stable_across_retransmissions() {
        let first = FrameStamp {
            arrival_ns: 6_000_000,
            head_ns: 1_000_000,
            queue_ns: 2_000_000,
            air_ns: 500_000,
            tail_ns: 100_000,
        };
        let retry = FrameStamp {
            arrival_ns: 9_500_000,
            queue_ns: first.queue_ns + 3_500_000,
            ..first
        };
        assert_eq!(first.birth_ns(), 2_500_000);
        assert_eq!(retry.birth_ns(), first.birth_ns());
        // Underflow saturates instead of wrapping.
        let degenerate = FrameStamp {
            arrival_ns: 1,
            head_ns: 5,
            ..FrameStamp::default()
        };
        assert_eq!(degenerate.birth_ns(), 0);
    }

    #[test]
    fn extra_queue_shifts_total_and_deadline_classification() {
        let policy = DeadlinePolicy::eq7d();
        let stamp = FrameStamp {
            arrival_ns: 4_000_000,
            head_ns: 2_000_000,
            queue_ns: 1_000_000,
            air_ns: 1_000_000,
            tail_ns: 500_000,
        };
        assert_eq!(stamp.with_extra_queue(0), stamp);
        let lagged = stamp.with_extra_queue(7_000_000);
        assert_eq!(lagged.total_ns(), stamp.total_ns() + 7_000_000);
        assert_eq!(policy.classify(stamp.total_ns()), FrameClass::OnTime);
        assert_eq!(policy.classify(lagged.total_ns()), FrameClass::Late);
        // Service deadline: birth (arrival − past legs) + budget.
        assert_eq!(policy.service_deadline_ns(&stamp), 10_000_000);
    }

    #[test]
    fn delay_stats_record_and_merge() {
        let mut a = RoundDelayStats::default();
        a.record(&FrameStamp {
            arrival_ns: 0,
            head_ns: 10,
            queue_ns: 20,
            air_ns: 30,
            tail_ns: 40,
        });
        a.record(&FrameStamp {
            arrival_ns: 0,
            head_ns: 1,
            queue_ns: 2,
            air_ns: 3,
            tail_ns: 4,
        });
        assert_eq!(
            (a.head_ns, a.queue_ns, a.air_ns, a.tail_ns),
            (11, 22, 33, 44)
        );
        assert_eq!(a.worst_e2e_ns, 100);
        assert_eq!(a.total_ns(), 110);
        let mut b = RoundDelayStats {
            worst_e2e_ns: 500,
            ..RoundDelayStats::default()
        };
        b.merge(&a);
        assert_eq!(b.worst_e2e_ns, 500);
        assert_eq!(b.total_ns(), 110);
        assert!((a.mean_e2e_s(2) - 55e-9).abs() < 1e-18);
        assert_eq!(RoundDelayStats::default().mean_e2e_s(0), 0.0);
    }
}
