//! The sessionized AP feedback server.

use crate::session::{StationId, StationSession};
use crate::ServeError;
use splitbeam::fused::TailScratch;
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::QuantizedFeedback;
use splitbeam::wire;
use std::collections::BTreeMap;
use std::sync::Arc;
use wifi_phy::precoding::BeamformingFeedback;

/// What one call to [`ApServer::process_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Index of the round that was just closed.
    pub round: u64,
    /// Stations whose payload was reconstructed this round.
    pub served: usize,
    /// Registered stations that delivered nothing this round.
    pub stale: usize,
    /// Batched tail invocations performed (one per model with pending traffic).
    pub batches: usize,
}

/// The AP-side serving state: model registry, per-station sessions (each
/// holding its pending payload slot for the round being collected), and the
/// per-round scratch arena.
///
/// Ingest and reconstruction are decoupled: [`ApServer::ingest_wire`] decodes
/// and validates frames as they arrive, [`ApServer::process_round`] coalesces
/// everything pending into one **fused dequantize→tail** batched inference per
/// model — bit-exact with [`ApServer::process_round_serial`], which
/// reconstructs station by station through the unfused single-payload path and
/// exists as the reference (and comparison baseline).
///
/// All per-round storage (wire decode buffer, batch id list, fused tail
/// scratch, per-station payload and feedback buffers) is recycled, so a full
/// steady-state ingest→decode→batched-reconstruct round performs no heap
/// allocation once every buffer has reached its high-water capacity.
#[derive(Debug, Clone, Default)]
pub struct ApServer {
    models: Vec<Arc<SplitBeamModel>>,
    sessions: BTreeMap<StationId, StationSession>,
    arena: RoundArena,
    round: u64,
}

/// Reusable per-round scratch owned by the server.
#[derive(Debug, Clone)]
struct RoundArena {
    /// Wire frames decode into this buffer before validation; on successful
    /// ingest it is swapped with the station's payload slot, so the two
    /// buffers circulate without reallocating.
    decode_buf: QuantizedFeedback,
    /// Station ids of the batch currently being reconstructed.
    ids: Vec<StationId>,
    /// Buffers of the fused batched tail reconstruction.
    tail: TailScratch,
}

impl Default for RoundArena {
    fn default() -> Self {
        Self {
            decode_buf: QuantizedFeedback {
                bits_per_value: 1,
                min: 0.0,
                max: 0.0,
                codes: Vec::new(),
            },
            ids: Vec::new(),
            tail: TailScratch::new(),
        }
    }
}

impl ApServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tail model and returns its key. Stations referencing the
    /// same key share the model (and one batched inference per round).
    pub fn register_model(&mut self, model: SplitBeamModel) -> usize {
        self.models.push(Arc::new(model));
        self.models.len() - 1
    }

    /// The model behind `key`.
    pub fn model(&self, key: usize) -> Option<&SplitBeamModel> {
        self.models.get(key).map(Arc::as_ref)
    }

    /// Associates a station with a registered model and quantizer width.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::DuplicateStation`] when the id is already associated, and
    /// [`ServeError::Codec`] for a bit width outside `1..=16`.
    pub fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        if model_key >= self.models.len() {
            return Err(ServeError::UnknownModel(model_key));
        }
        if !(1..=16).contains(&bits_per_value) {
            return Err(ServeError::Codec(format!(
                "station {id} announced invalid bits_per_value {bits_per_value}"
            )));
        }
        if self.sessions.contains_key(&id) {
            return Err(ServeError::DuplicateStation(id));
        }
        self.sessions
            .insert(id, StationSession::new(id, model_key, bits_per_value));
        Ok(())
    }

    /// Number of registered stations.
    pub fn num_stations(&self) -> usize {
        self.sessions.len()
    }

    /// The session of station `id`.
    pub fn session(&self, id: StationId) -> Option<&StationSession> {
        self.sessions.get(&id)
    }

    /// Iterates over all sessions in station-id order.
    pub fn sessions(&self) -> impl Iterator<Item = &StationSession> {
        self.sessions.values()
    }

    /// Index of the sounding round currently being collected.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Number of payloads waiting for the next `process_round`.
    pub fn pending_count(&self) -> usize {
        self.sessions.values().filter(|s| s.has_pending()).count()
    }

    /// Ingests one bit-packed wire frame from station `id` for the current
    /// round, returning the decoded payload size in bytes. A station reporting
    /// twice in one round replaces its pending payload (last wins).
    ///
    /// The frame decodes into the server's recycled decode buffer, which is
    /// then swapped with the station's payload slot — steady-state ingest
    /// allocates nothing.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] for an unassociated id and
    /// [`ServeError::Codec`] when the frame fails to decode, its bit width
    /// disagrees with the session, or the code count does not match the
    /// station's model bottleneck. A failed ingest leaves any previously
    /// pending payload of the station untouched.
    pub fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        wire::decode_feedback_into(frame, &mut self.arena.decode_buf)
            .map_err(|e| ServeError::Codec(e.to_string()))?;
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownStation(id))?;
        Self::validate_payload(&self.models, session, &self.arena.decode_buf)?;
        std::mem::swap(session.payload_slot(), &mut self.arena.decode_buf);
        session.set_pending(true);
        session.record_ingest(frame.len());
        Ok(frame.len())
    }

    /// Ingests an already-decoded payload (in-process stations, tests).
    ///
    /// # Errors
    /// Same validation as [`ApServer::ingest_wire`].
    pub fn ingest_payload(
        &mut self,
        id: StationId,
        payload: QuantizedFeedback,
        wire_bytes: usize,
    ) -> Result<usize, ServeError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownStation(id))?;
        Self::validate_payload(&self.models, session, &payload)?;
        *session.payload_slot() = payload;
        session.set_pending(true);
        session.record_ingest(wire_bytes);
        Ok(wire_bytes)
    }

    /// Shared ingest validation: announced quantizer width and bottleneck
    /// dimension must match the session.
    fn validate_payload(
        models: &[Arc<SplitBeamModel>],
        session: &StationSession,
        payload: &QuantizedFeedback,
    ) -> Result<(), ServeError> {
        let id = session.id();
        if payload.bits_per_value != session.bits_per_value() {
            return Err(ServeError::Codec(format!(
                "station {id} sent {} bits/value, session announced {}",
                payload.bits_per_value,
                session.bits_per_value()
            )));
        }
        let expected = models[session.model_key()].bottleneck_dim();
        if payload.codes.len() != expected {
            return Err(ServeError::Codec(format!(
                "station {id} sent {} codes, model bottleneck is {expected}",
                payload.codes.len()
            )));
        }
        Ok(())
    }

    /// Closes the current round: coalesces all pending payloads into **one
    /// fused dequantize→tail batched inference per model**
    /// ([`SplitBeamModel::reconstruct_quantized_batch_iter_into`]), stores
    /// every reconstruction in its session, and advances the round counter.
    /// All intermediate storage comes from the server's round arena.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a tail reconstruction fails (the round is
    /// still consumed: every pending payload is discarded).
    pub fn process_round(&mut self) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let mut served = 0usize;
        let mut batches = 0usize;
        let Self {
            models,
            sessions,
            arena,
            ..
        } = self;
        let RoundArena { ids, tail, .. } = arena;
        let kern = mimo_math::kernel::selected();
        for (key, model) in models.iter().enumerate() {
            ids.clear();
            ids.extend(
                sessions
                    .values()
                    .filter(|s| s.has_pending() && s.model_key() == key)
                    .map(StationSession::id),
            );
            if ids.is_empty() {
                continue;
            }
            batches += 1;
            let result = model.reconstruct_quantized_batch_iter_into(
                ids.iter().map(|id| sessions[id].payload()),
                ids.len(),
                tail,
                kern,
            );
            let flats = match result {
                Ok(flats) => flats,
                Err(e) => {
                    // Same contract as the historical mem::take: a failed
                    // round still consumes every pending payload.
                    for session in sessions.values_mut() {
                        session.set_pending(false);
                    }
                    return Err(ServeError::Model(e.to_string()));
                }
            };
            let width = flats.cols();
            for (id, flat) in ids.iter().zip(flats.as_slice().chunks_exact(width)) {
                let session = sessions
                    .get_mut(id)
                    .expect("pending payload from registered station");
                session.store_feedback(flat, round);
                session.set_pending(false);
                served += 1;
            }
        }
        Ok(RoundSummary {
            round,
            served,
            stale: self.sessions.len() - served,
            batches,
        })
    }

    /// Reference path: closes the round reconstructing **one station at a
    /// time** through the unfused dequantize-then-tail path (no coalescing).
    /// Produces bit-identical session state to [`ApServer::process_round`];
    /// kept for verification and as the baseline the fused batched path is
    /// benchmarked against.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a tail reconstruction fails.
    pub fn process_round_serial(&mut self) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let mut served = 0usize;
        let mut models_touched = std::collections::BTreeSet::new();
        let Self {
            models, sessions, ..
        } = self;
        let mut failure = None;
        for session in sessions.values_mut() {
            if !session.has_pending() {
                continue;
            }
            session.set_pending(false);
            if failure.is_some() {
                // A failed round still consumes the remaining payloads.
                continue;
            }
            let key = session.model_key();
            models_touched.insert(key);
            match models[key].reconstruct_quantized(session.payload()) {
                Ok(flat) => {
                    session.store_feedback(&flat, round);
                    served += 1;
                }
                Err(e) => failure = Some(ServeError::Model(e.to_string())),
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(RoundSummary {
            round,
            served,
            stale: self.sessions.len() - served,
            batches: models_touched.len(),
        })
    }

    /// The latest reconstructed feedback of station `id`, in the tail's flat
    /// real-interleaved layout.
    pub fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        self.sessions.get(&id).and_then(StationSession::feedback)
    }

    /// The latest feedback of station `id` materialized as per-subcarrier
    /// `Nt x Nss` beamforming matrices.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] / [`ServeError::NoFeedback`] when the
    /// station is missing or was never served.
    pub fn feedback_matrices_of(
        &self,
        id: StationId,
    ) -> Result<Vec<mimo_math::CMatrix>, ServeError> {
        let session = self
            .sessions
            .get(&id)
            .ok_or(ServeError::UnknownStation(id))?;
        let flat = session.feedback().ok_or(ServeError::NoFeedback(id))?;
        self.models[session.model_key()]
            .feedback_to_matrices(flat)
            .map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Stacks the latest feedback of `ids` (in the given order) into the
    /// per-user layout [`wifi_phy::precoding::ZfPrecoder`] consumes. Matrix
    /// materialization happens here, per precoding group — deliberately off
    /// the per-round serving path.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] / [`ServeError::NoFeedback`] when a
    /// station is missing or was never served.
    pub fn group_feedback(&self, ids: &[StationId]) -> Result<BeamformingFeedback, ServeError> {
        ids.iter()
            .map(|&id| self.feedback_matrices_of(id))
            .collect()
    }

    /// Stations (id order) whose feedback is at most `max_age` rounds old,
    /// relative to the last closed round.
    pub fn fresh_station_ids(&self, max_age: u64) -> Vec<StationId> {
        let now = self.round.saturating_sub(1);
        self.sessions
            .values()
            .filter(|s| s.is_fresh(now, max_age))
            .map(StationSession::id)
            .collect()
    }

    /// Partitions fresh stations into MU-MIMO groups the zero-forcing precoder
    /// can serve simultaneously: stations sharing a model, chunked so each
    /// group's total stream count stays within the AP's `Nt` antennas.
    pub fn mu_mimo_groups(&self, max_age: u64) -> Vec<Vec<StationId>> {
        let fresh = self.fresh_station_ids(max_age);
        let mut groups = Vec::new();
        for key in 0..self.models.len() {
            let config = self.models[key].config();
            let per_group = (config.mimo.nt / config.mimo.nss.max(1)).max(1);
            let members: Vec<StationId> = fresh
                .iter()
                .copied()
                .filter(|id| self.sessions[id].model_key() == key)
                .collect();
            groups.extend(members.chunks(per_group).map(<[StationId]>::to_vec));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use splitbeam::quantization::quantize_bottleneck;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
        let csi: Vec<f32> = channel
            .sample(&mut rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = model.compress_quantized(&csi, bits).unwrap();
        splitbeam::wire::encode_feedback(&payload).unwrap()
    }

    #[test]
    fn registration_is_validated() {
        let mut server = ApServer::new();
        assert_eq!(
            server.register_station(1, 0, 8),
            Err(ServeError::UnknownModel(0))
        );
        let key = server.register_model(model(1));
        assert!(server.register_station(1, key, 8).is_ok());
        assert_eq!(
            server.register_station(1, key, 8),
            Err(ServeError::DuplicateStation(1))
        );
        assert!(matches!(
            server.register_station(2, key, 0),
            Err(ServeError::Codec(_))
        ));
        assert_eq!(server.num_stations(), 1);
        assert!(server.model(key).is_some());
    }

    #[test]
    fn ingest_validates_width_and_dimension() {
        let m = model(2);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(7, key, 8).unwrap();

        let frame = station_frame(&m, 3, 8);
        assert!(matches!(
            server.ingest_wire(99, &frame),
            Err(ServeError::UnknownStation(99))
        ));
        // Wrong announced width.
        let narrow = station_frame(&m, 3, 4);
        assert!(matches!(
            server.ingest_wire(7, &narrow),
            Err(ServeError::Codec(_))
        ));
        // Wrong bottleneck width.
        let short = quantize_bottleneck(&[0.5; 3], 8);
        assert!(matches!(
            server.ingest_payload(7, short, 10),
            Err(ServeError::Codec(_))
        ));
        // Valid frame; a second one in the same round replaces the first.
        assert_eq!(server.ingest_wire(7, &frame).unwrap(), frame.len());
        server.ingest_wire(7, &frame).unwrap();
        assert_eq!(server.pending_count(), 1);
        assert_eq!(server.session(7).unwrap().payloads_ingested(), 2);
    }

    #[test]
    fn batched_round_matches_serial_round_exactly() {
        let m = model(4);
        let stations = 5u64;
        let mut batched = ApServer::new();
        let mut serial = ApServer::new();
        let bkey = batched.register_model(m.clone());
        let skey = serial.register_model(m.clone());
        for id in 0..stations {
            batched.register_station(id, bkey, 6).unwrap();
            serial.register_station(id, skey, 6).unwrap();
        }
        for round in 0..3u64 {
            for id in 0..stations {
                // Station `stations - 1` skips round 1 to exercise staleness.
                if round == 1 && id == stations - 1 {
                    continue;
                }
                let frame = station_frame(&m, 100 + round * stations + id, 6);
                batched.ingest_wire(id, &frame).unwrap();
                serial.ingest_wire(id, &frame).unwrap();
            }
            let b = batched.process_round().unwrap();
            let s = serial.process_round_serial().unwrap();
            assert_eq!(b, s, "round summaries must agree");
            if round == 1 {
                assert_eq!(b.served, stations as usize - 1);
                assert_eq!(b.stale, 1);
            }
            for id in 0..stations {
                assert_eq!(
                    batched.feedback_of(id),
                    serial.feedback_of(id),
                    "round {round}, station {id}: batched and serial must be bit-exact"
                );
            }
        }
        // The skipping station's feedback aged but was refreshed in round 2.
        assert_eq!(batched.session(stations - 1).unwrap().last_round(), Some(2));
    }

    #[test]
    fn staleness_and_grouping() {
        let m = model(5);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        for id in 0..5u64 {
            server.register_station(id, key, 8).unwrap();
        }
        // Round 0: stations 0..3 report; 3 and 4 stay silent.
        for id in 0..3u64 {
            let frame = station_frame(&m, 50 + id, 8);
            server.ingest_wire(id, &frame).unwrap();
        }
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.stale, summary.batches), (3, 2, 1));
        assert_eq!(server.fresh_station_ids(0), vec![0, 1, 2]);
        // Nt = 2, Nss = 1 -> groups of at most two stations.
        let groups = server.mu_mimo_groups(0);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
        let feedback = server.group_feedback(&groups[0]).unwrap();
        assert_eq!(feedback.len(), 2);
        assert_eq!(feedback[0].len(), 56);
        assert_eq!(server.group_feedback(&[4]), Err(ServeError::NoFeedback(4)));
        assert_eq!(
            server.group_feedback(&[77]),
            Err(ServeError::UnknownStation(77))
        );
        // One idle round: age grows, freshness window matters.
        server.process_round().unwrap();
        assert!(server.fresh_station_ids(0).is_empty());
        assert_eq!(server.fresh_station_ids(1), vec![0, 1, 2]);
    }

    #[test]
    fn steady_state_round_recycles_feedback_buffers() {
        let m = model(8);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        for id in 0..3u64 {
            server.register_station(id, key, 6).unwrap();
        }
        for id in 0..3u64 {
            server
                .ingest_wire(id, &station_frame(&m, 70 + id, 6))
                .unwrap();
        }
        server.process_round().unwrap();
        let ptrs: Vec<*const f32> = (0..3u64)
            .map(|id| server.feedback_of(id).unwrap().as_ptr())
            .collect();
        for round in 0..2u64 {
            for id in 0..3u64 {
                let frame = station_frame(&m, 80 + round * 3 + id, 6);
                server.ingest_wire(id, &frame).unwrap();
            }
            server.process_round().unwrap();
            for (id, &ptr) in ptrs.iter().enumerate() {
                assert_eq!(
                    server.feedback_of(id as StationId).unwrap().as_ptr(),
                    ptr,
                    "steady-state serving must reuse station {id}'s feedback buffer"
                );
            }
        }
        assert_eq!(server.pending_count(), 0);
    }

    #[test]
    fn multiple_models_batch_independently() {
        let m_a = model(6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m_b = SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneQuarter,
            ),
            &mut rng,
        );
        let mut server = ApServer::new();
        let key_a = server.register_model(m_a.clone());
        let key_b = server.register_model(m_b.clone());
        server.register_station(0, key_a, 8).unwrap();
        server.register_station(1, key_b, 8).unwrap();
        server.ingest_wire(0, &station_frame(&m_a, 60, 8)).unwrap();
        server.ingest_wire(1, &station_frame(&m_b, 61, 8)).unwrap();
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.batches), (2, 2));
    }
}
