//! The sessionized AP feedback server.

use crate::session::{StationId, StationSession};
use crate::ServeError;
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::{dequantize_bottleneck, QuantizedFeedback};
use splitbeam::wire;
use std::collections::BTreeMap;
use std::sync::Arc;
use wifi_phy::precoding::BeamformingFeedback;

/// What one call to [`ApServer::process_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Index of the round that was just closed.
    pub round: u64,
    /// Stations whose payload was reconstructed this round.
    pub served: usize,
    /// Registered stations that delivered nothing this round.
    pub stale: usize,
    /// Batched tail invocations performed (one per model with pending traffic).
    pub batches: usize,
}

/// The AP-side serving state: model registry, per-station sessions, and the
/// payloads pending for the current sounding round.
///
/// Ingest and reconstruction are decoupled: [`ApServer::ingest_wire`] decodes
/// and validates frames as they arrive, [`ApServer::process_round`] coalesces
/// everything pending into one batched tail inference per model — bit-exact
/// with [`ApServer::process_round_serial`], which reconstructs station by
/// station and exists as the reference (and comparison baseline).
#[derive(Debug, Clone, Default)]
pub struct ApServer {
    models: Vec<Arc<SplitBeamModel>>,
    sessions: BTreeMap<StationId, StationSession>,
    pending: BTreeMap<StationId, QuantizedFeedback>,
    round: u64,
}

impl ApServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tail model and returns its key. Stations referencing the
    /// same key share the model (and one batched inference per round).
    pub fn register_model(&mut self, model: SplitBeamModel) -> usize {
        self.models.push(Arc::new(model));
        self.models.len() - 1
    }

    /// The model behind `key`.
    pub fn model(&self, key: usize) -> Option<&SplitBeamModel> {
        self.models.get(key).map(Arc::as_ref)
    }

    /// Associates a station with a registered model and quantizer width.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::DuplicateStation`] when the id is already associated, and
    /// [`ServeError::Codec`] for a bit width outside `1..=16`.
    pub fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        if model_key >= self.models.len() {
            return Err(ServeError::UnknownModel(model_key));
        }
        if !(1..=16).contains(&bits_per_value) {
            return Err(ServeError::Codec(format!(
                "station {id} announced invalid bits_per_value {bits_per_value}"
            )));
        }
        if self.sessions.contains_key(&id) {
            return Err(ServeError::DuplicateStation(id));
        }
        self.sessions
            .insert(id, StationSession::new(id, model_key, bits_per_value));
        Ok(())
    }

    /// Number of registered stations.
    pub fn num_stations(&self) -> usize {
        self.sessions.len()
    }

    /// The session of station `id`.
    pub fn session(&self, id: StationId) -> Option<&StationSession> {
        self.sessions.get(&id)
    }

    /// Iterates over all sessions in station-id order.
    pub fn sessions(&self) -> impl Iterator<Item = &StationSession> {
        self.sessions.values()
    }

    /// Index of the sounding round currently being collected.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Number of payloads waiting for the next `process_round`.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Ingests one bit-packed wire frame from station `id` for the current
    /// round, returning the decoded payload size in bytes. A station reporting
    /// twice in one round replaces its pending payload (last wins).
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] for an unassociated id and
    /// [`ServeError::Codec`] when the frame fails to decode, its bit width
    /// disagrees with the session, or the code count does not match the
    /// station's model bottleneck.
    pub fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        let payload = wire::decode_feedback(frame).map_err(|e| ServeError::Codec(e.to_string()))?;
        self.ingest_payload(id, payload, frame.len())
    }

    /// Ingests an already-decoded payload (in-process stations, tests).
    ///
    /// # Errors
    /// Same validation as [`ApServer::ingest_wire`].
    pub fn ingest_payload(
        &mut self,
        id: StationId,
        payload: QuantizedFeedback,
        wire_bytes: usize,
    ) -> Result<usize, ServeError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownStation(id))?;
        if payload.bits_per_value != session.bits_per_value() {
            return Err(ServeError::Codec(format!(
                "station {id} sent {} bits/value, session announced {}",
                payload.bits_per_value,
                session.bits_per_value()
            )));
        }
        let expected = self.models[session.model_key()].bottleneck_dim();
        if payload.codes.len() != expected {
            return Err(ServeError::Codec(format!(
                "station {id} sent {} codes, model bottleneck is {expected}",
                payload.codes.len()
            )));
        }
        session.record_ingest(wire_bytes);
        self.pending.insert(id, payload);
        Ok(wire_bytes)
    }

    /// Closes the current round: coalesces all pending payloads into **one
    /// batched tail inference per model**, stores every reconstruction in its
    /// session, and advances the round counter.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a tail reconstruction fails (the round is
    /// still consumed).
    pub fn process_round(&mut self) -> Result<RoundSummary, ServeError> {
        let pending = std::mem::take(&mut self.pending);
        let round = self.round;
        self.round += 1;
        let mut served = 0usize;
        let mut batches = 0usize;
        for key in 0..self.models.len() {
            let group: Vec<(StationId, &QuantizedFeedback)> = pending
                .iter()
                .filter(|(id, _)| self.sessions[id].model_key() == key)
                .map(|(&id, p)| (id, p))
                .collect();
            if group.is_empty() {
                continue;
            }
            batches += 1;
            let model = Arc::clone(&self.models[key]);
            let bottlenecks: Vec<Vec<f32>> = group
                .iter()
                .map(|(_, p)| dequantize_bottleneck(p))
                .collect();
            let refs: Vec<&[f32]> = bottlenecks.iter().map(Vec::as_slice).collect();
            let flats = model
                .reconstruct_batch(&refs)
                .map_err(|e| ServeError::Model(e.to_string()))?;
            for ((id, _), flat) in group.iter().zip(flats.iter()) {
                self.sessions
                    .get_mut(id)
                    .expect("pending payload from registered station")
                    .store_feedback(flat, round);
                served += 1;
            }
        }
        Ok(RoundSummary {
            round,
            served,
            stale: self.sessions.len() - served,
            batches,
        })
    }

    /// Reference path: closes the round reconstructing **one station at a
    /// time** (no coalescing). Produces bit-identical session state to
    /// [`ApServer::process_round`]; kept for verification and as the baseline
    /// the batched path is benchmarked against.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a tail reconstruction fails.
    pub fn process_round_serial(&mut self) -> Result<RoundSummary, ServeError> {
        let pending = std::mem::take(&mut self.pending);
        let round = self.round;
        self.round += 1;
        let mut served = 0usize;
        let mut models_touched = std::collections::BTreeSet::new();
        for (id, payload) in &pending {
            let key = self.sessions[id].model_key();
            models_touched.insert(key);
            let model = Arc::clone(&self.models[key]);
            let flat = model
                .reconstruct_quantized(payload)
                .map_err(|e| ServeError::Model(e.to_string()))?;
            self.sessions
                .get_mut(id)
                .expect("pending payload from registered station")
                .store_feedback(&flat, round);
            served += 1;
        }
        Ok(RoundSummary {
            round,
            served,
            stale: self.sessions.len() - served,
            batches: models_touched.len(),
        })
    }

    /// The latest reconstructed feedback of station `id`, in the tail's flat
    /// real-interleaved layout.
    pub fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        self.sessions.get(&id).and_then(StationSession::feedback)
    }

    /// The latest feedback of station `id` materialized as per-subcarrier
    /// `Nt x Nss` beamforming matrices.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] / [`ServeError::NoFeedback`] when the
    /// station is missing or was never served.
    pub fn feedback_matrices_of(
        &self,
        id: StationId,
    ) -> Result<Vec<mimo_math::CMatrix>, ServeError> {
        let session = self
            .sessions
            .get(&id)
            .ok_or(ServeError::UnknownStation(id))?;
        let flat = session.feedback().ok_or(ServeError::NoFeedback(id))?;
        self.models[session.model_key()]
            .feedback_to_matrices(flat)
            .map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Stacks the latest feedback of `ids` (in the given order) into the
    /// per-user layout [`wifi_phy::precoding::ZfPrecoder`] consumes. Matrix
    /// materialization happens here, per precoding group — deliberately off
    /// the per-round serving path.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] / [`ServeError::NoFeedback`] when a
    /// station is missing or was never served.
    pub fn group_feedback(&self, ids: &[StationId]) -> Result<BeamformingFeedback, ServeError> {
        ids.iter()
            .map(|&id| self.feedback_matrices_of(id))
            .collect()
    }

    /// Stations (id order) whose feedback is at most `max_age` rounds old,
    /// relative to the last closed round.
    pub fn fresh_station_ids(&self, max_age: u64) -> Vec<StationId> {
        let now = self.round.saturating_sub(1);
        self.sessions
            .values()
            .filter(|s| s.is_fresh(now, max_age))
            .map(StationSession::id)
            .collect()
    }

    /// Partitions fresh stations into MU-MIMO groups the zero-forcing precoder
    /// can serve simultaneously: stations sharing a model, chunked so each
    /// group's total stream count stays within the AP's `Nt` antennas.
    pub fn mu_mimo_groups(&self, max_age: u64) -> Vec<Vec<StationId>> {
        let fresh = self.fresh_station_ids(max_age);
        let mut groups = Vec::new();
        for key in 0..self.models.len() {
            let config = self.models[key].config();
            let per_group = (config.mimo.nt / config.mimo.nss.max(1)).max(1);
            let members: Vec<StationId> = fresh
                .iter()
                .copied()
                .filter(|id| self.sessions[id].model_key() == key)
                .collect();
            groups.extend(members.chunks(per_group).map(<[StationId]>::to_vec));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use splitbeam::quantization::quantize_bottleneck;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
        let csi: Vec<f32> = channel
            .sample(&mut rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = model.compress_quantized(&csi, bits).unwrap();
        splitbeam::wire::encode_feedback(&payload).unwrap()
    }

    #[test]
    fn registration_is_validated() {
        let mut server = ApServer::new();
        assert_eq!(
            server.register_station(1, 0, 8),
            Err(ServeError::UnknownModel(0))
        );
        let key = server.register_model(model(1));
        assert!(server.register_station(1, key, 8).is_ok());
        assert_eq!(
            server.register_station(1, key, 8),
            Err(ServeError::DuplicateStation(1))
        );
        assert!(matches!(
            server.register_station(2, key, 0),
            Err(ServeError::Codec(_))
        ));
        assert_eq!(server.num_stations(), 1);
        assert!(server.model(key).is_some());
    }

    #[test]
    fn ingest_validates_width_and_dimension() {
        let m = model(2);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(7, key, 8).unwrap();

        let frame = station_frame(&m, 3, 8);
        assert!(matches!(
            server.ingest_wire(99, &frame),
            Err(ServeError::UnknownStation(99))
        ));
        // Wrong announced width.
        let narrow = station_frame(&m, 3, 4);
        assert!(matches!(
            server.ingest_wire(7, &narrow),
            Err(ServeError::Codec(_))
        ));
        // Wrong bottleneck width.
        let short = quantize_bottleneck(&[0.5; 3], 8);
        assert!(matches!(
            server.ingest_payload(7, short, 10),
            Err(ServeError::Codec(_))
        ));
        // Valid frame; a second one in the same round replaces the first.
        assert_eq!(server.ingest_wire(7, &frame).unwrap(), frame.len());
        server.ingest_wire(7, &frame).unwrap();
        assert_eq!(server.pending_count(), 1);
        assert_eq!(server.session(7).unwrap().payloads_ingested(), 2);
    }

    #[test]
    fn batched_round_matches_serial_round_exactly() {
        let m = model(4);
        let stations = 5u64;
        let mut batched = ApServer::new();
        let mut serial = ApServer::new();
        let bkey = batched.register_model(m.clone());
        let skey = serial.register_model(m.clone());
        for id in 0..stations {
            batched.register_station(id, bkey, 6).unwrap();
            serial.register_station(id, skey, 6).unwrap();
        }
        for round in 0..3u64 {
            for id in 0..stations {
                // Station `stations - 1` skips round 1 to exercise staleness.
                if round == 1 && id == stations - 1 {
                    continue;
                }
                let frame = station_frame(&m, 100 + round * stations + id, 6);
                batched.ingest_wire(id, &frame).unwrap();
                serial.ingest_wire(id, &frame).unwrap();
            }
            let b = batched.process_round().unwrap();
            let s = serial.process_round_serial().unwrap();
            assert_eq!(b, s, "round summaries must agree");
            if round == 1 {
                assert_eq!(b.served, stations as usize - 1);
                assert_eq!(b.stale, 1);
            }
            for id in 0..stations {
                assert_eq!(
                    batched.feedback_of(id),
                    serial.feedback_of(id),
                    "round {round}, station {id}: batched and serial must be bit-exact"
                );
            }
        }
        // The skipping station's feedback aged but was refreshed in round 2.
        assert_eq!(batched.session(stations - 1).unwrap().last_round(), Some(2));
    }

    #[test]
    fn staleness_and_grouping() {
        let m = model(5);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        for id in 0..5u64 {
            server.register_station(id, key, 8).unwrap();
        }
        // Round 0: stations 0..3 report; 3 and 4 stay silent.
        for id in 0..3u64 {
            let frame = station_frame(&m, 50 + id, 8);
            server.ingest_wire(id, &frame).unwrap();
        }
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.stale, summary.batches), (3, 2, 1));
        assert_eq!(server.fresh_station_ids(0), vec![0, 1, 2]);
        // Nt = 2, Nss = 1 -> groups of at most two stations.
        let groups = server.mu_mimo_groups(0);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
        let feedback = server.group_feedback(&groups[0]).unwrap();
        assert_eq!(feedback.len(), 2);
        assert_eq!(feedback[0].len(), 56);
        assert_eq!(server.group_feedback(&[4]), Err(ServeError::NoFeedback(4)));
        assert_eq!(
            server.group_feedback(&[77]),
            Err(ServeError::UnknownStation(77))
        );
        // One idle round: age grows, freshness window matters.
        server.process_round().unwrap();
        assert!(server.fresh_station_ids(0).is_empty());
        assert_eq!(server.fresh_station_ids(1), vec![0, 1, 2]);
    }

    #[test]
    fn multiple_models_batch_independently() {
        let m_a = model(6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m_b = SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneQuarter,
            ),
            &mut rng,
        );
        let mut server = ApServer::new();
        let key_a = server.register_model(m_a.clone());
        let key_b = server.register_model(m_b.clone());
        server.register_station(0, key_a, 8).unwrap();
        server.register_station(1, key_b, 8).unwrap();
        server.ingest_wire(0, &station_frame(&m_a, 60, 8)).unwrap();
        server.ingest_wire(1, &station_frame(&m_b, 61, 8)).unwrap();
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.batches), (2, 2));
    }
}
