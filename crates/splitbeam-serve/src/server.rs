//! The sessionized AP feedback server.

use crate::ring::Ring;
use crate::session::{SessionHealth, StationId, StationSession};
use crate::slab::SessionSlab;
use crate::timing::{DeadlinePolicy, FrameClass, FrameStamp, RoundDelayStats};
use crate::ServeError;
use mimo_math::kernel::Kernel;
use mimo_math::Int8Kernel;
use splitbeam::fused::{QuantizedTail, TailScratch, TailWeights};
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::QuantizedFeedback;
use splitbeam::wire;
use std::sync::Arc;
use wifi_phy::precoding::BeamformingFeedback;

/// What one call to [`ApServer::process_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Index of the round that was just closed.
    pub round: u64,
    /// Stations whose payload was reconstructed this round (on-time plus
    /// late-but-usable).
    pub served: usize,
    /// Registered stations that have reported in some earlier round but
    /// delivered nothing this round — their feedback aged.
    pub stale: usize,
    /// Registered stations that have never produced feedback: they delivered
    /// nothing this round *and* have nothing to go stale. Kept apart from
    /// [`RoundSummary::stale`] so "aged feedback" and "no feedback yet" stay
    /// distinguishable in serving reports.
    pub awaiting_first_report: usize,
    /// Batched tail invocations performed (one per model with pending traffic).
    pub batches: usize,
    /// Served reports whose end-to-end delay fit the Eq. 7d budget
    /// (inclusive). Untimed lockstep closes count every served report here.
    pub on_time: usize,
    /// Served reports past the budget but within the deadline policy's grace
    /// window — reconstructed, but flagged, never silently fresh.
    pub late: usize,
    /// Reports past budget *and* grace: consumed without reconstruction.
    pub expired: usize,
    /// Virtual-delay breakdown (head/queue/air/tail) summed over served
    /// reports. All-zero under untimed lockstep serving.
    pub delay: RoundDelayStats,
    /// Frames the fault-injected medium dropped this round (event-driven
    /// serving only; always `0` for the lockstep servers).
    pub lost: usize,
    /// Frames rejected by the CRC-32 integrity check this round.
    pub corrupt: usize,
    /// Station retransmissions that were attempted this round (event-driven
    /// serving only; always `0` for the lockstep servers).
    pub retransmitted: usize,
    /// Stale stations still served from last-known-good feedback this round —
    /// their age is within the health policy's staleness cap. A subset of
    /// [`RoundSummary::stale`]; stations past the cap drop out of MU-MIMO
    /// grouping entirely.
    pub stale_served: usize,
}

/// Thresholds of the per-session health state machine (graceful degradation
/// under a lossy or hostile medium).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive silent rounds before a session is marked
    /// [`SessionHealth::Degraded`]; `0` disables degradation tracking.
    pub degrade_after_misses: u32,
    /// Consecutive corrupt frames before a session is quarantined; `0`
    /// disables quarantining.
    pub quarantine_after_corrupt: u32,
    /// How many rounds a quarantine lasts once triggered.
    pub quarantine_rounds: u64,
    /// Maximum feedback age (in rounds) a silent station may be served from
    /// last-known-good feedback before it drops out of MU-MIMO grouping.
    pub stale_serve_cap: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            degrade_after_misses: 2,
            quarantine_after_corrupt: 3,
            quarantine_rounds: 8,
            stale_serve_cap: 3,
        }
    }
}

/// The AP-side serving state: model registry, per-station sessions (each
/// holding its pending payload slot for the round being collected), and the
/// per-round scratch arena.
///
/// Ingest and reconstruction are decoupled: [`ApServer::ingest_wire`] decodes
/// and validates frames as they arrive, [`ApServer::process_round`] coalesces
/// everything pending into one **fused dequantize→tail** batched inference per
/// model — bit-exact with [`ApServer::process_round_serial`], which
/// reconstructs station by station through the unfused single-payload path and
/// exists as the reference (and comparison baseline).
///
/// All per-round storage (wire decode buffer, batch id list, fused tail
/// scratch, per-station payload and feedback buffers) is recycled, so a full
/// steady-state ingest→decode→batched-reconstruct round performs no heap
/// allocation once every buffer has reached its high-water capacity.
///
/// `ApServer` is the single-shard building block; the multi-core serving
/// layer ([`crate::shard::ShardedApServer`]) runs the very same per-shard
/// round-close code over many independent session partitions.
#[derive(Debug, Clone, Default)]
pub struct ApServer {
    models: Vec<Arc<SplitBeamModel>>,
    /// Int8 tails bound from the registered models (same indices as
    /// `models`); consulted only when `tail_weights` is
    /// [`TailWeights::Int8`].
    tails: Vec<Arc<QuantizedTail>>,
    /// Which weight format round closes reconstruct with. The f32 default is
    /// bit-exact with the pre-quantization serving path.
    tail_weights: TailWeights,
    core: ShardCore,
    round: u64,
    /// When set, wire ingest routes through the shard's streaming ring and
    /// rounds close via watermark-driven micro-batches.
    streaming: bool,
    /// Micro-closes of the last streaming round (0 for barrier rounds).
    /// Observability only: deliberately not part of [`RoundSummary`], so the
    /// degenerate streaming round stays bit-identical to the barrier close.
    last_micro_closes: usize,
}

/// Reusable per-round scratch owned by one shard.
#[derive(Debug, Clone)]
pub(crate) struct RoundArena {
    /// Wire frames decode into this buffer before validation; on successful
    /// ingest it is swapped with the station's payload slot, so the two
    /// buffers circulate without reallocating.
    decode_buf: QuantizedFeedback,
    /// Station ids of the batch currently being reconstructed.
    ids: Vec<StationId>,
    /// Buffers of the fused batched tail reconstruction.
    tail: TailScratch,
}

impl Default for RoundArena {
    fn default() -> Self {
        Self {
            decode_buf: QuantizedFeedback {
                bits_per_value: 1,
                min: 0.0,
                max: 0.0,
                codes: Vec::new(),
            },
            ids: Vec::new(),
            tail: TailScratch::new(),
        }
    }
}

/// Default capacity of a shard's streaming ingest ring.
pub(crate) const DEFAULT_STREAM_CAPACITY: usize = 256;

/// One decoded frame queued in a shard's streaming ring, awaiting its
/// watermark commit.
#[derive(Debug)]
pub(crate) struct StreamFrame {
    pub(crate) id: StationId,
    pub(crate) payload: QuantizedFeedback,
    pub(crate) stamp: FrameStamp,
    pub(crate) seq: u16,
}

/// Counters accumulated across a round's micro-batch closes, folded into the
/// round outcome at finalize. Health/staleness accounting deliberately does
/// NOT live here — it runs exactly once per round, at finalize, so streaming
/// never emits phantom `awaiting_first_report`/`stale` counts per micro-batch.
#[derive(Debug, Default)]
pub(crate) struct MicroAccum {
    served: usize,
    batches: usize,
    micro_closes: usize,
    on_time: usize,
    late: usize,
    expired: usize,
    delay: RoundDelayStats,
    error: Option<ServeError>,
}

impl MicroAccum {
    fn fold(&mut self, pass: ServePass) {
        self.served += pass.served;
        self.batches += pass.batches;
        self.on_time += pass.on_time;
        self.late += pass.late;
        self.expired += pass.expired;
        self.delay.merge(&pass.delay);
        if self.error.is_none() {
            self.error = pass.error;
        }
    }
}

/// One shard's streaming state: the bounded lock-free ingest ring, a
/// one-frame stash for FIFO head-gated commits, a freelist of recycled
/// payload buffers (steady-state streaming ingest allocates nothing), and
/// the micro-batch accumulator.
#[derive(Debug)]
pub(crate) struct StreamLane {
    ring: Ring<StreamFrame>,
    /// The first not-yet-due frame popped by a commit pass; commits are
    /// FIFO head-gated, so nothing behind it commits either.
    stash: Option<StreamFrame>,
    free: Vec<QuantizedFeedback>,
    acc: MicroAccum,
}

impl StreamLane {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            ring: Ring::with_capacity(capacity),
            stash: None,
            free: Vec::new(),
            acc: MicroAccum::default(),
        }
    }

    fn queued(&self) -> usize {
        self.ring.len() + usize::from(self.stash.is_some())
    }
}

impl Default for StreamLane {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_STREAM_CAPACITY)
    }
}

impl Clone for StreamLane {
    /// Cloning a serving core clones the lane *empty* (same capacity): the
    /// ring is a synchronization structure, not data to duplicate. Servers
    /// are only cloned quiescent (between rounds), where the lane holds
    /// nothing anyway.
    fn clone(&self) -> Self {
        Self::with_capacity(self.ring.capacity())
    }
}

/// Everything a round close needs to run the tail: the f32 master models, the
/// int8 tails bound from them at registration, which weight format serves this
/// round, and the resolved kernel of each precision tier. Built once per round
/// close and shared (it is `Copy`) by every shard, so the batched, serial,
/// and streaming micro-batch paths all dispatch identically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TailEngine<'a> {
    pub(crate) models: &'a [Arc<SplitBeamModel>],
    pub(crate) tails: &'a [Arc<QuantizedTail>],
    pub(crate) mode: TailWeights,
    pub(crate) kern: Kernel,
    pub(crate) ik: Int8Kernel,
}

impl<'a> TailEngine<'a> {
    /// Bundles the registries with the kernels currently selected for the f32
    /// and int8 tiers (`SPLITBEAM_KERNEL` / [`mimo_math::kernel::set_kernel`]).
    pub(crate) fn new(
        models: &'a [Arc<SplitBeamModel>],
        tails: &'a [Arc<QuantizedTail>],
        mode: TailWeights,
    ) -> Self {
        Self {
            models,
            tails,
            mode,
            kern: mimo_math::kernel::selected(),
            ik: mimo_math::kernel::int8::selected_int8(),
        }
    }
}

/// One shard's worth of serving state: a session partition plus its private
/// round arena. [`ApServer`] owns exactly one; `ShardedApServer` owns `N` and
/// closes them in parallel. Every round-close code path lives here, so the
/// single-shard and sharded servers are bit-exact by construction.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardCore {
    pub(crate) sessions: SessionSlab,
    pub(crate) arena: RoundArena,
    /// Health thresholds applied to every session of this shard.
    pub(crate) health: HealthPolicy,
    /// Corrupt frames seen since the last round close (reported in the next
    /// round's summary, then reset).
    pub(crate) round_corrupt: usize,
    /// Streaming micro-batch state (ring, stash, freelist, accumulator).
    pub(crate) lane: StreamLane,
    /// Artificial close lag injected into this shard's serving path (bench
    /// stall model). Barrier closes pay the *maximum* stall across shards —
    /// the whole round waits on the slowest shard — while streaming closes
    /// pay only the shard's own stall.
    pub(crate) stall_ns: u64,
}

/// What closing one round over one shard did. `error` carries the first
/// failure (in model-key order) while the counters describe everything that
/// still happened — a failed batch never blocks the other models' batches.
#[derive(Debug)]
pub(crate) struct RoundOutcome {
    pub(crate) served: usize,
    pub(crate) stale: usize,
    pub(crate) awaiting_first_report: usize,
    pub(crate) batches: usize,
    pub(crate) on_time: usize,
    pub(crate) late: usize,
    pub(crate) expired: usize,
    pub(crate) delay: RoundDelayStats,
    pub(crate) corrupt: usize,
    pub(crate) stale_served: usize,
    /// Watermark-triggered micro-batch closes that fired during the round
    /// (streaming only; `0` for barrier closes). Not part of the public
    /// summary — the bit-exactness anchor compares summaries across modes.
    pub(crate) micro_closes: usize,
    pub(crate) error: Option<ServeError>,
}

/// What one serving pass (a barrier close's serve step, or one streaming
/// micro-batch close) did. Health/staleness accounting is *not* here — it
/// belongs to the once-per-round finalize.
#[derive(Debug, Default)]
pub(crate) struct ServePass {
    served: usize,
    batches: usize,
    on_time: usize,
    late: usize,
    expired: usize,
    delay: RoundDelayStats,
    error: Option<ServeError>,
}

impl RoundOutcome {
    /// Converts the outcome into the public summary, surfacing the first
    /// error when one occurred (the partial round state is already applied).
    pub(crate) fn into_summary(self, round: u64) -> Result<RoundSummary, ServeError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(RoundSummary {
            round,
            served: self.served,
            stale: self.stale,
            awaiting_first_report: self.awaiting_first_report,
            batches: self.batches,
            on_time: self.on_time,
            late: self.late,
            expired: self.expired,
            delay: self.delay,
            lost: 0,
            corrupt: self.corrupt,
            retransmitted: 0,
            stale_served: self.stale_served,
        })
    }
}

impl ShardCore {
    /// Registration validation, shared verbatim by the single-shard and
    /// sharded servers so both report identical errors for identical bad
    /// input (model key first, then bit width, then duplicate id).
    pub(crate) fn validate_registration(
        &self,
        num_models: usize,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        if model_key >= num_models {
            return Err(ServeError::UnknownModel(model_key));
        }
        if !(1..=16).contains(&bits_per_value) {
            return Err(ServeError::Codec(format!(
                "station {id} announced invalid bits_per_value {bits_per_value}"
            )));
        }
        if self.sessions.contains(id) {
            return Err(ServeError::DuplicateStation(id));
        }
        Ok(())
    }

    pub(crate) fn register_station(
        &mut self,
        num_models: usize,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
        round: u64,
    ) -> Result<(), ServeError> {
        self.validate_registration(num_models, id, model_key, bits_per_value)?;
        self.sessions
            .insert(StationSession::new(id, model_key, bits_per_value, round))
            .map(|_| ())
            .map_err(|rejected| ServeError::DuplicateStation(rejected.id()))
    }

    /// Adopts a roaming station's full session state (payloads, health,
    /// staleness clocks) rebound to `model_key` on this server — the warm
    /// half of a fleet handoff; registration validation still applies, minus
    /// the fresh-join reset a cold re-register would perform.
    /// On failure the untouched session rides back in the error, so the
    /// caller can restore it at the source AP instead of dropping the
    /// station.
    // The fat Err is the point: the rejected session must ride back to the
    // caller for restore, and boxing a cold failure path buys nothing.
    #[allow(clippy::result_large_err)]
    pub(crate) fn adopt_station(
        &mut self,
        num_models: usize,
        mut session: StationSession,
        model_key: usize,
    ) -> Result<(), (StationSession, ServeError)> {
        if let Err(e) = self.validate_registration(
            num_models,
            session.id(),
            model_key,
            session.bits_per_value(),
        ) {
            return Err((session, e));
        }
        session.rebind_model(model_key);
        self.sessions
            .insert(session)
            .map(|_| ())
            .map_err(|rejected| {
                let id = rejected.id();
                (rejected, ServeError::DuplicateStation(id))
            })
    }

    /// Releases station `id` for a handoff, returning its full session
    /// state. The inverse of [`ShardCore::adopt_station`].
    pub(crate) fn release_station(&mut self, id: StationId) -> Result<StationSession, ServeError> {
        self.sessions
            .remove(id)
            .ok_or(ServeError::UnknownStation(id))
    }

    pub(crate) fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError> {
        self.sessions
            .remove(id)
            .map(|_| ())
            .ok_or(ServeError::UnknownStation(id))
    }

    pub(crate) fn ingest_wire(
        &mut self,
        models: &[Arc<SplitBeamModel>],
        id: StationId,
        frame: &[u8],
        round: u64,
    ) -> Result<usize, ServeError> {
        self.ingest_wire_at(models, id, frame, FrameStamp::default(), round)
    }

    /// Timestamped wire ingest: like [`ShardCore::ingest_wire`] but records
    /// the frame's virtual-time stamp so the deadline-aware round closer can
    /// classify it against the Eq. 7d budget.
    ///
    /// The fault-tolerant ingest order: session lookup, quarantine gate,
    /// CRC/decode (a [`ServeError::Corrupt`] rejection feeds the session's
    /// corrupt streak and can trigger quarantine), duplicate-sequence
    /// suppression, then payload validation and commit. A failed ingest of
    /// any kind leaves a previously pending payload untouched.
    pub(crate) fn ingest_wire_at(
        &mut self,
        models: &[Arc<SplitBeamModel>],
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
        round: u64,
    ) -> Result<usize, ServeError> {
        let Self {
            sessions,
            arena,
            health,
            round_corrupt,
            ..
        } = self;
        let session = sessions.get_mut(id).ok_or(ServeError::UnknownStation(id))?;
        if session.is_quarantined(round) {
            return Err(ServeError::Quarantined(id));
        }
        if let Err(e) = wire::decode_feedback_into(frame, &mut arena.decode_buf) {
            return Err(match e {
                splitbeam::SplitBeamError::CorruptFrame(msg) => {
                    *round_corrupt += 1;
                    session.note_corrupt(round, health);
                    ServeError::Corrupt(id, msg)
                }
                other => ServeError::Codec(other.to_string()),
            });
        }
        let seq = wire::frame_seq(frame);
        if seq != 0 && session.has_pending() && session.pending_seq() == seq {
            return Err(ServeError::DuplicateFrame(id, seq));
        }
        Self::validate_payload(models, session, &arena.decode_buf)?;
        std::mem::swap(session.payload_slot(), &mut arena.decode_buf);
        session.set_pending(true);
        session.set_pending_stamp(stamp);
        session.set_pending_seq(seq);
        session.note_clean_ingest();
        session.record_ingest(frame.len());
        Ok(frame.len())
    }

    pub(crate) fn ingest_payload(
        &mut self,
        models: &[Arc<SplitBeamModel>],
        id: StationId,
        payload: QuantizedFeedback,
        wire_bytes: usize,
        round: u64,
    ) -> Result<usize, ServeError> {
        let session = self
            .sessions
            .get_mut(id)
            .ok_or(ServeError::UnknownStation(id))?;
        if session.is_quarantined(round) {
            return Err(ServeError::Quarantined(id));
        }
        Self::validate_payload(models, session, &payload)?;
        *session.payload_slot() = payload;
        session.set_pending(true);
        session.set_pending_stamp(FrameStamp::default());
        session.set_pending_seq(0);
        session.note_clean_ingest();
        session.record_ingest(wire_bytes);
        Ok(wire_bytes)
    }

    /// Shared ingest validation: announced quantizer width and bottleneck
    /// dimension must match the session.
    fn validate_payload(
        models: &[Arc<SplitBeamModel>],
        session: &StationSession,
        payload: &QuantizedFeedback,
    ) -> Result<(), ServeError> {
        let id = session.id();
        if payload.bits_per_value != session.bits_per_value() {
            return Err(ServeError::Codec(format!(
                "station {id} sent {} bits/value, session announced {}",
                payload.bits_per_value,
                session.bits_per_value()
            )));
        }
        let expected = models[session.model_key()].bottleneck_dim();
        if payload.codes.len() != expected {
            return Err(ServeError::Codec(format!(
                "station {id} sent {} codes, model bottleneck is {expected}",
                payload.codes.len()
            )));
        }
        Ok(())
    }

    pub(crate) fn pending_count(&self) -> usize {
        // Order-free count: the dense slot walk, not the id-ordered view.
        self.sessions
            .values_unordered()
            .filter(|s| s.has_pending())
            .count()
    }

    /// Post-round health pass. Splits unserved stations into `stale`
    /// (feedback aged this round) vs `awaiting_first_report` (never reported);
    /// stations served this round count as neither. Of the stale stations,
    /// those whose feedback age is still within the policy's staleness cap are
    /// counted `stale_served` — the AP keeps representing them with
    /// last-known-good feedback; past the cap they drop out of MU-MIMO
    /// grouping. Every session's health state machine advances here.
    fn health_pass(&mut self, round: u64) -> (usize, usize, usize) {
        let mut stale = 0usize;
        let mut awaiting = 0usize;
        let mut stale_served = 0usize;
        let policy = self.health;
        // Per-session counter fold: visit order cannot reach the output, so
        // the dense unordered walk is safe (and cache-friendly at fleet
        // session counts).
        for session in self.sessions.values_unordered_mut() {
            let mut reported = false;
            match session.last_round() {
                Some(r) if r == round => reported = true,
                Some(r) => {
                    stale += 1;
                    if round.saturating_sub(r) <= policy.stale_serve_cap {
                        stale_served += 1;
                    }
                }
                None => awaiting += 1,
            }
            session.close_health(round, &policy, reported);
        }
        (stale, awaiting, stale_served)
    }

    /// Deadline pass shared by the batched and serial closers: consumes every
    /// pending payload whose end-to-end delay (per its ingest stamp, plus
    /// `lag_ns` of close lag when a shard is stalled) falls past the policy's
    /// budget *and* grace window. Expired reports are never reconstructed —
    /// Eq. 7d is enforced at close, not measured post-hoc. Returns the number
    /// of expired reports; with no policy nothing expires.
    fn expire_pending(&mut self, policy: Option<DeadlinePolicy>, lag_ns: u64) -> usize {
        let Some(policy) = policy else { return 0 };
        let mut expired = 0usize;
        for session in self.sessions.values_unordered_mut() {
            if session.has_pending()
                && policy.classify(session.pending_stamp().total_ns().saturating_add(lag_ns))
                    == FrameClass::Expired
            {
                session.set_pending(false);
                session.set_pending_stamp(FrameStamp::default());
                expired += 1;
            }
        }
        expired
    }

    /// Classifies a served report against the policy and folds it into the
    /// round accounting, recording the class on the session. `lag_ns` is the
    /// close lag of a stalled shard: it counts as additional queueing, so a
    /// report held past its budget by a slow close is classified (and
    /// recorded) late — identity at `lag_ns == 0`.
    fn account_served(
        session: &mut StationSession,
        policy: Option<DeadlinePolicy>,
        lag_ns: u64,
        on_time: &mut usize,
        late: &mut usize,
        delay: &mut RoundDelayStats,
    ) {
        let stamp = session.pending_stamp().with_extra_queue(lag_ns);
        let is_late = match policy {
            Some(p) => p.classify(stamp.total_ns()) == FrameClass::Late,
            None => false,
        };
        if is_late {
            *late += 1;
        } else {
            *on_time += 1;
        }
        delay.record(&stamp);
        session.record_service_class(policy.map(|_| stamp), is_late);
        session.set_pending_stamp(FrameStamp::default());
    }

    /// Closes round `round` over this shard with one fused dequantize→tail
    /// batched inference per model. With a [`DeadlinePolicy`], pending
    /// reports are classified first: expired ones are consumed without
    /// reconstruction, late-but-usable ones are served but flagged.
    ///
    /// **Partial-round semantics on failure:** a failed batch consumes only
    /// *its own* pending payloads (they are what failed); every other model's
    /// batch still runs and stores its reconstructions, and the first error
    /// (in model-key order) is reported in the outcome. Stations of healthy
    /// models are never penalized for an unrelated model's failure.
    pub(crate) fn close_round_batched(
        &mut self,
        engine: &TailEngine<'_>,
        round: u64,
        policy: Option<DeadlinePolicy>,
        lag_ns: u64,
    ) -> RoundOutcome {
        let pass = self.serve_pending_batched(engine, round, policy, lag_ns);
        self.finish_round(round, pass, 0)
    }

    /// The serve step shared by the barrier close and streaming micro-batch
    /// closes: expires over-budget pending reports, then runs one fused
    /// dequantize→tail batched inference per model with pending traffic.
    /// Performs **no** health/staleness accounting — that happens once per
    /// round, in [`ShardCore::finish_round`].
    fn serve_pending_batched(
        &mut self,
        engine: &TailEngine<'_>,
        round: u64,
        policy: Option<DeadlinePolicy>,
        lag_ns: u64,
    ) -> ServePass {
        let expired = self.expire_pending(policy, lag_ns);
        let mut served = 0usize;
        let mut batches = 0usize;
        let mut on_time = 0usize;
        let mut late = 0usize;
        let mut delay = RoundDelayStats::default();
        let mut first_error = None;
        let Self {
            sessions, arena, ..
        } = self;
        let RoundArena { ids, tail, .. } = arena;
        for (key, model) in engine.models.iter().enumerate() {
            ids.clear();
            ids.extend(
                sessions
                    .values()
                    .filter(|s| s.has_pending() && s.model_key() == key)
                    .map(StationSession::id),
            );
            if ids.is_empty() {
                continue;
            }
            batches += 1;
            let result = match engine.mode {
                TailWeights::F32 => model.reconstruct_quantized_batch_iter_into(
                    ids.iter().map(|id| sessions[id].payload()),
                    ids.len(),
                    tail,
                    engine.kern,
                ),
                TailWeights::Int8 => engine.tails[key].reconstruct_quantized_batch_iter_into(
                    ids.iter().map(|id| sessions[id].payload()),
                    ids.len(),
                    tail,
                    engine.ik,
                ),
            };
            match result {
                Ok(flats) => {
                    let width = flats.cols();
                    for (id, flat) in ids.iter().zip(flats.as_slice().chunks_exact(width)) {
                        let session = sessions
                            .get_mut(*id)
                            .expect("pending payload from registered station");
                        session.store_feedback(flat, round);
                        session.set_pending(false);
                        Self::account_served(
                            session,
                            policy,
                            lag_ns,
                            &mut on_time,
                            &mut late,
                            &mut delay,
                        );
                        served += 1;
                        // Serving is the activity the idle-LRU orders by.
                        sessions.touch(*id);
                    }
                }
                Err(e) => {
                    // Consume only the failed batch's payloads; other models'
                    // pending traffic is untouched and still gets its batch.
                    for id in ids.iter() {
                        let session = sessions
                            .get_mut(*id)
                            .expect("pending payload from registered station");
                        session.set_pending(false);
                        session.set_pending_stamp(FrameStamp::default());
                    }
                    if first_error.is_none() {
                        first_error = Some(ServeError::Model(e.to_string()));
                    }
                }
            }
        }
        ServePass {
            served,
            batches,
            on_time,
            late,
            expired,
            delay,
            error: first_error,
        }
    }

    /// The once-per-round tail of every close path: health/staleness pass,
    /// corrupt-counter harvest, and outcome assembly.
    fn finish_round(&mut self, round: u64, pass: ServePass, micro_closes: usize) -> RoundOutcome {
        let (stale, awaiting_first_report, stale_served) = self.health_pass(round);
        RoundOutcome {
            served: pass.served,
            stale,
            awaiting_first_report,
            batches: pass.batches,
            on_time: pass.on_time,
            late: pass.late,
            expired: pass.expired,
            delay: pass.delay,
            corrupt: std::mem::take(&mut self.round_corrupt),
            stale_served,
            micro_closes,
            error: pass.error,
        }
    }

    /// Closes round `round` reconstructing one station at a time through the
    /// unfused path. Mirrors [`ShardCore::close_round_batched`]'s partial-round
    /// semantics exactly, including on failure: each model's payloads are
    /// reconstructed first and committed only when the *whole* model
    /// succeeded — a failing payload consumes the failed model's pending
    /// payloads without storing any of them (just like the failed batch),
    /// stations bound to other models are served normally, and the first
    /// error (in model-key order) is reported.
    pub(crate) fn close_round_serial(
        &mut self,
        engine: &TailEngine<'_>,
        round: u64,
        policy: Option<DeadlinePolicy>,
        lag_ns: u64,
    ) -> RoundOutcome {
        let pass = self.serve_pending_serial(engine, round, policy, lag_ns);
        self.finish_round(round, pass, 0)
    }

    /// Serial analog of [`ShardCore::serve_pending_batched`]: one unfused
    /// reconstruction per station, committed all-or-nothing per model. No
    /// health accounting.
    fn serve_pending_serial(
        &mut self,
        engine: &TailEngine<'_>,
        round: u64,
        policy: Option<DeadlinePolicy>,
        lag_ns: u64,
    ) -> ServePass {
        let expired = self.expire_pending(policy, lag_ns);
        let mut served = 0usize;
        let mut batches = 0usize;
        let mut on_time = 0usize;
        let mut late = 0usize;
        let mut delay = RoundDelayStats::default();
        let mut first_error = None;
        for (key, model) in engine.models.iter().enumerate() {
            let ids: Vec<StationId> = self
                .sessions
                .values()
                .filter(|s| s.has_pending() && s.model_key() == key)
                .map(StationSession::id)
                .collect();
            if ids.is_empty() {
                continue;
            }
            batches += 1;
            let mut flats = Vec::with_capacity(ids.len());
            let mut failure = None;
            for id in &ids {
                let result = match engine.mode {
                    TailWeights::F32 => model.reconstruct_quantized(self.sessions[id].payload()),
                    TailWeights::Int8 => engine.tails[key]
                        .reconstruct_quantized(self.sessions[id].payload(), engine.ik),
                };
                match result {
                    Ok(flat) => flats.push(flat),
                    Err(e) => {
                        failure = Some(ServeError::Model(e.to_string()));
                        break;
                    }
                }
            }
            match failure {
                None => {
                    for (id, flat) in ids.iter().zip(flats) {
                        let session = self
                            .sessions
                            .get_mut(*id)
                            .expect("pending payload from registered station");
                        session.store_feedback(&flat, round);
                        session.set_pending(false);
                        Self::account_served(
                            session,
                            policy,
                            lag_ns,
                            &mut on_time,
                            &mut late,
                            &mut delay,
                        );
                        served += 1;
                        self.sessions.touch(*id);
                    }
                }
                Some(e) => {
                    for id in &ids {
                        let session = self
                            .sessions
                            .get_mut(*id)
                            .expect("pending payload from registered station");
                        session.set_pending(false);
                        session.set_pending_stamp(FrameStamp::default());
                    }
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        ServePass {
            served,
            batches,
            on_time,
            late,
            expired,
            delay,
            error: first_error,
        }
    }

    /// Streaming ingest: validates the frame exactly like
    /// [`ShardCore::ingest_wire_at`] but enqueues it onto the shard's bounded
    /// lock-free ring instead of committing straight into the session. The
    /// frame only becomes pending when a watermark later commits it
    /// ([`ShardCore::commit_due`]); a full ring rejects the frame with
    /// [`ServeError::Backpressure`] without touching session state.
    ///
    /// Duplicate suppression mirrors the lockstep path's window: a sequence
    /// number is suppressed while the station still has that frame in flight
    /// (queued on the ring) or pending (committed, not yet served) — the same
    /// frames that `ingest_wire_at` would reject are rejected here.
    pub(crate) fn stream_ingest(
        &mut self,
        models: &[Arc<SplitBeamModel>],
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
        round: u64,
    ) -> Result<usize, ServeError> {
        let Self {
            sessions,
            arena,
            health,
            round_corrupt,
            lane,
            ..
        } = self;
        let session = sessions.get_mut(id).ok_or(ServeError::UnknownStation(id))?;
        if session.is_quarantined(round) {
            return Err(ServeError::Quarantined(id));
        }
        if let Err(e) = wire::decode_feedback_into(frame, &mut arena.decode_buf) {
            return Err(match e {
                splitbeam::SplitBeamError::CorruptFrame(msg) => {
                    *round_corrupt += 1;
                    session.note_corrupt(round, health);
                    ServeError::Corrupt(id, msg)
                }
                other => ServeError::Codec(other.to_string()),
            });
        }
        let seq = wire::frame_seq(frame);
        if seq != 0
            && session.pending_seq() == seq
            && (session.stream_inflight() > 0 || session.has_pending())
        {
            return Err(ServeError::DuplicateFrame(id, seq));
        }
        Self::validate_payload(models, session, &arena.decode_buf)?;
        // Move the decoded payload into a recycled buffer so ingest stays
        // allocation-free in steady state (mirrors the lockstep swap).
        let mut payload = lane.free.pop().unwrap_or_else(|| QuantizedFeedback {
            bits_per_value: 1,
            min: 0.0,
            max: 0.0,
            codes: Vec::new(),
        });
        std::mem::swap(&mut payload, &mut arena.decode_buf);
        match lane.ring.push(StreamFrame {
            id,
            payload,
            stamp,
            seq,
        }) {
            Ok(()) => {
                session.set_pending_seq(seq);
                session.inc_stream_inflight();
                session.note_clean_ingest();
                session.record_ingest(frame.len());
                Ok(frame.len())
            }
            Err(rejected) => {
                let cap = lane.ring.capacity();
                lane.free.push(rejected.payload);
                Err(ServeError::Backpressure(id, cap))
            }
        }
    }

    /// Commits every queued frame whose arrival stamp is at or before
    /// `watermark_ns` into its session, in ingest (FIFO) order — so a station
    /// reporting twice keeps last-wins semantics identical to lockstep
    /// ingest. Stops at the first frame still ahead of the watermark (head-
    /// gated: later frames wait even if individually due, preserving order).
    fn commit_due(&mut self, watermark_ns: u64) {
        loop {
            let frame = match self.lane.stash.take() {
                Some(f) => f,
                None => match self.lane.ring.pop() {
                    Some(f) => f,
                    None => break,
                },
            };
            if frame.stamp.arrival_ns > watermark_ns {
                self.lane.stash = Some(frame);
                break;
            }
            let StreamFrame {
                id,
                mut payload,
                stamp,
                seq,
            } = frame;
            match self.sessions.get_mut(id) {
                Some(session) => {
                    std::mem::swap(session.payload_slot(), &mut payload);
                    session.set_pending(true);
                    session.set_pending_stamp(stamp);
                    session.set_pending_seq(seq);
                    session.dec_stream_inflight();
                    self.lane.free.push(payload);
                }
                // Station deregistered with frames still in flight: drop the
                // frame, recycle its buffer.
                None => self.lane.free.push(payload),
            }
        }
    }

    /// One watermark tick: commits due frames, then micro-closes this shard's
    /// pending batch iff the oldest pending frame's Eq. 7d service deadline
    /// falls before the *next* watermark — i.e. this is the last watermark at
    /// which that frame can still be served within budget. Each shard decides
    /// independently; no cross-shard barrier.
    pub(crate) fn advance_watermark(
        &mut self,
        engine: &TailEngine<'_>,
        round: u64,
        watermark_ns: u64,
        step_ns: u64,
        policy: Option<DeadlinePolicy>,
    ) {
        self.commit_due(watermark_ns);
        let trigger = policy.unwrap_or_else(DeadlinePolicy::eq7d);
        let oldest_deadline = self
            .sessions
            .values_unordered()
            .filter(|s| s.has_pending())
            .map(|s| trigger.service_deadline_ns(s.pending_stamp()))
            .min();
        if let Some(deadline) = oldest_deadline {
            if deadline <= watermark_ns.saturating_add(step_ns) {
                let pass = self.serve_pending_batched(engine, round, policy, self.stall_ns);
                self.lane.acc.fold(pass);
                self.lane.acc.micro_closes += 1;
            }
        }
    }

    /// Streaming round close: commits everything still queued, serves any
    /// remaining pending batch, folds in the round's accumulated micro-batch
    /// summaries, and runs the once-per-round health pass. Equivalent to
    /// [`ShardCore::close_round_batched`] when no intermediate watermark
    /// fired (the whole round serves as one batch).
    pub(crate) fn finalize_stream_round(
        &mut self,
        engine: &TailEngine<'_>,
        round: u64,
        policy: Option<DeadlinePolicy>,
    ) -> RoundOutcome {
        self.commit_due(u64::MAX);
        let tail = self.serve_pending_batched(engine, round, policy, self.stall_ns);
        let mut acc = std::mem::take(&mut self.lane.acc);
        acc.fold(tail);
        let micro_closes = acc.micro_closes;
        let pass = ServePass {
            served: acc.served,
            batches: acc.batches,
            on_time: acc.on_time,
            late: acc.late,
            expired: acc.expired,
            delay: acc.delay,
            error: acc.error,
        };
        self.finish_round(round, pass, micro_closes)
    }

    /// Whether this shard saw any traffic this round — streaming analog of
    /// the barrier path's `pending_count() > 0` check, which must also count
    /// frames already served by micro-closes and frames still queued on the
    /// ring.
    pub(crate) fn round_had_traffic(&self) -> bool {
        self.pending_count() > 0
            || self.lane.queued() > 0
            || self.lane.acc.batches > 0
            || self.lane.acc.served > 0
            || self.lane.acc.expired > 0
            || self.lane.acc.error.is_some()
    }

    /// Evicts every station idle for more than `max_idle_rounds` sounding
    /// rounds at the just-closed round, returning how many were removed.
    /// Never-reporting stations are measured from their association round.
    pub(crate) fn evict_idle(&mut self, closed_round: u64, max_idle_rounds: u64) -> usize {
        // The slab walks its idle-LRU list from the cold end and stops at
        // the first survivor: O(evicted), not O(sessions).
        self.sessions.evict_idle(closed_round, max_idle_rounds)
    }
}

impl ApServer {
    /// Creates an empty server. The tail weight format starts from the
    /// `SPLITBEAM_TAIL_WEIGHTS` environment knob (`int8` opts into the
    /// quantized tier, anything else serves f32).
    pub fn new() -> Self {
        Self {
            tail_weights: TailWeights::from_env(),
            ..Self::default()
        }
    }

    /// Registers a tail model and returns its key. Stations referencing the
    /// same key share the model (and one batched inference per round). The
    /// model's int8 tail is quantized and packed here, once, so round closes
    /// under [`TailWeights::Int8`] pay no bind cost.
    pub fn register_model(&mut self, model: SplitBeamModel) -> usize {
        self.tails.push(Arc::new(QuantizedTail::bind(&model)));
        self.models.push(Arc::new(model));
        self.models.len() - 1
    }

    /// The int8 tail bound from model `key`.
    pub fn quantized_tail(&self, key: usize) -> Option<&QuantizedTail> {
        self.tails.get(key).map(Arc::as_ref)
    }

    /// The weight format round closes currently reconstruct with.
    pub fn tail_weights(&self) -> TailWeights {
        self.tail_weights
    }

    /// Switches the tail weight format for subsequent round closes. Safe at
    /// any round boundary — the int8 tails were bound at registration.
    pub fn set_tail_weights(&mut self, mode: TailWeights) {
        self.tail_weights = mode;
    }

    /// The model behind `key`.
    pub fn model(&self, key: usize) -> Option<&SplitBeamModel> {
        self.models.get(key).map(Arc::as_ref)
    }

    /// Associates a station with a registered model and quantizer width.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::DuplicateStation`] when the id is already associated, and
    /// [`ServeError::Codec`] for a bit width outside `1..=16`.
    pub fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        self.core
            .register_station(self.models.len(), id, model_key, bits_per_value, self.round)
    }

    /// Removes a station's session (disassociation). The id can be registered
    /// again afterwards with a completely fresh session.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] when the id is not registered.
    pub fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError> {
        self.core.deregister_station(id)
    }

    /// Releases station `id` for a fleet handoff, returning its full session
    /// state (pending payload, feedback history, health and staleness
    /// clocks) for the target AP to adopt. Unlike deregistration, nothing is
    /// reset.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] when the id is not registered.
    pub fn release_station(&mut self, id: StationId) -> Result<StationSession, ServeError> {
        self.core.release_station(id)
    }

    /// Adopts a roaming station's released session, rebound to this server's
    /// `model_key` — the warm half of a fleet handoff; no cold re-register,
    /// so the station keeps its feedback, pending payload and health state.
    ///
    /// # Errors
    /// The same registration validations as
    /// [`ApServer::register_station`] (model key, bit width, duplicate id);
    /// the rejected session rides back in the error so the caller can
    /// restore it at the source AP instead of dropping the station.
    // The fat Err is the point: the rejected session must ride back to the
    // caller for restore, and boxing a cold failure path buys nothing.
    #[allow(clippy::result_large_err)]
    pub fn adopt_station(
        &mut self,
        session: StationSession,
        model_key: usize,
    ) -> Result<(), (StationSession, ServeError)> {
        self.core
            .adopt_station(self.models.len(), session, model_key)
    }

    /// Number of registered stations.
    pub fn num_stations(&self) -> usize {
        self.core.sessions.len()
    }

    /// The session of station `id`.
    pub fn session(&self, id: StationId) -> Option<&StationSession> {
        self.core.sessions.get(id)
    }

    /// Iterates over all sessions in station-id order.
    pub fn sessions(&self) -> impl Iterator<Item = &StationSession> {
        self.core.sessions.values()
    }

    /// Index of the sounding round currently being collected.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Number of payloads waiting for the next `process_round`.
    pub fn pending_count(&self) -> usize {
        self.core.pending_count()
    }

    /// Ingests one bit-packed wire frame from station `id` for the current
    /// round, returning the decoded payload size in bytes. A station reporting
    /// twice in one round replaces its pending payload (last wins).
    ///
    /// The frame decodes into the server's recycled decode buffer, which is
    /// then swapped with the station's payload slot — steady-state ingest
    /// allocates nothing.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] for an unassociated id,
    /// [`ServeError::Quarantined`] while the station is quarantined,
    /// [`ServeError::Corrupt`] when the frame fails its CRC-32 check,
    /// [`ServeError::DuplicateFrame`] when a sequenced frame re-delivers the
    /// pending sequence number, and [`ServeError::Codec`] when the frame fails
    /// to decode, its bit width disagrees with the session, or the code count
    /// does not match the station's model bottleneck. A failed ingest leaves
    /// any previously pending payload of the station untouched.
    pub fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        if self.streaming {
            return self.core.stream_ingest(
                &self.models,
                id,
                frame,
                FrameStamp::default(),
                self.round,
            );
        }
        self.core.ingest_wire(&self.models, id, frame, self.round)
    }

    /// Timestamped wire ingest: like [`ApServer::ingest_wire`], but records
    /// the frame's virtual-time [`FrameStamp`] (arrival plus per-leg delay
    /// breakdown) on the session, so a subsequent
    /// [`ApServer::process_round_deadline`] can classify the report against
    /// the Eq. 7d budget.
    ///
    /// # Errors
    /// Same contract as [`ApServer::ingest_wire`].
    pub fn ingest_wire_at(
        &mut self,
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
    ) -> Result<usize, ServeError> {
        if self.streaming {
            return self
                .core
                .stream_ingest(&self.models, id, frame, stamp, self.round);
        }
        self.core
            .ingest_wire_at(&self.models, id, frame, stamp, self.round)
    }

    /// Ingests an already-decoded payload (in-process stations, tests).
    ///
    /// # Errors
    /// Same validation as [`ApServer::ingest_wire`].
    pub fn ingest_payload(
        &mut self,
        id: StationId,
        payload: QuantizedFeedback,
        wire_bytes: usize,
    ) -> Result<usize, ServeError> {
        self.core
            .ingest_payload(&self.models, id, payload, wire_bytes, self.round)
    }

    /// The health thresholds applied to every session.
    pub fn health_policy(&self) -> HealthPolicy {
        self.core.health
    }

    /// Replaces the health thresholds (takes effect from the next ingest).
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.core.health = policy;
    }

    /// Closes the current round: coalesces all pending payloads into **one
    /// fused dequantize→tail batched inference per model**
    /// ([`SplitBeamModel::reconstruct_quantized_batch_iter_into`]), stores
    /// every reconstruction in its session, and advances the round counter.
    /// All intermediate storage comes from the server's round arena.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a tail reconstruction fails. The round is
    /// **partial, not voided**: the failed batch's payloads are discarded,
    /// but every other model's batch still ran and stored its
    /// reconstructions, and the round counter advanced — the error reports
    /// the first failed model's reconstruction failure.
    pub fn process_round(&mut self) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let lag = self.core.stall_ns;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        self.core
            .close_round_batched(&engine, round, None, lag)
            .into_summary(round)
    }

    /// Deadline-aware batched round close: every pending report is classified
    /// against `policy` by its ingest stamp's end-to-end delay — on-time
    /// (within the Eq. 7d budget, inclusive) and late-but-usable reports are
    /// reconstructed in the same fused batch, expired reports are consumed
    /// **without** reconstruction. Untimed frames carry an all-zero stamp and
    /// always classify on-time, which is how the lockstep drivers remain the
    /// degenerate case.
    ///
    /// # Errors
    /// Same contract and partial-round semantics as
    /// [`ApServer::process_round`].
    pub fn process_round_deadline(
        &mut self,
        policy: DeadlinePolicy,
    ) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let lag = self.core.stall_ns;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        self.core
            .close_round_batched(&engine, round, Some(policy), lag)
            .into_summary(round)
    }

    /// Reference path: closes the round reconstructing **one station at a
    /// time** through the unfused dequantize-then-tail path (no coalescing).
    /// Produces bit-identical session state to [`ApServer::process_round`];
    /// kept for verification and as the baseline the fused batched path is
    /// benchmarked against.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a tail reconstruction fails; the same
    /// partial-round semantics as [`ApServer::process_round`] apply (only the
    /// failing model's payloads are consumed unreconstructed).
    pub fn process_round_serial(&mut self) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let lag = self.core.stall_ns;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        self.core
            .close_round_serial(&engine, round, None, lag)
            .into_summary(round)
    }

    /// Deadline-aware serial round close: the station-at-a-time reference for
    /// [`ApServer::process_round_deadline`], with identical classification
    /// semantics (expired reports consumed unreconstructed, late reports
    /// served but flagged).
    ///
    /// # Errors
    /// Same contract as [`ApServer::process_round_serial`].
    pub fn process_round_serial_deadline(
        &mut self,
        policy: DeadlinePolicy,
    ) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let lag = self.core.stall_ns;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        self.core
            .close_round_serial(&engine, round, Some(policy), lag)
            .into_summary(round)
    }

    /// Switches between lockstep and streaming ingest. In streaming mode,
    /// [`ApServer::ingest_wire`]/[`ApServer::ingest_wire_at`] enqueue frames
    /// onto the bounded per-server ring and commits happen on watermarks
    /// ([`ApServer::advance_watermark`]); the round still closes through
    /// [`ApServer::process_round_streaming`]. Only toggle while quiescent (no
    /// frames queued or pending).
    pub fn set_streaming(&mut self, on: bool) {
        self.streaming = on;
    }

    /// Whether streaming ingest is active.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Sets this server's artificial close lag (a stalled-shard model): every
    /// close pays `ns` of additional queueing delay when classifying served
    /// and expired reports. Identity at 0.
    pub fn set_stall_ns(&mut self, ns: u64) {
        self.core.stall_ns = ns;
    }

    /// Replaces the streaming ingest ring with one of `capacity` slots
    /// (rounded up to a power of two, minimum 2). Only call while quiescent:
    /// any queued frames are dropped.
    pub fn set_stream_capacity(&mut self, capacity: usize) {
        self.core.lane = StreamLane::with_capacity(capacity);
    }

    /// One watermark tick at virtual time `watermark_ns` with tick period
    /// `step_ns`: commits every queued frame that has arrived by the
    /// watermark, then micro-closes the pending batch iff the oldest pending
    /// frame's Eq. 7d service deadline (per `policy`, default
    /// [`DeadlinePolicy::eq7d`]) falls before the next watermark. Micro-batch
    /// accounting accumulates into the round summary produced by
    /// [`ApServer::process_round_streaming`].
    pub fn advance_watermark(
        &mut self,
        watermark_ns: u64,
        step_ns: u64,
        policy: Option<DeadlinePolicy>,
    ) {
        let round = self.round;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        self.core
            .advance_watermark(&engine, round, watermark_ns, step_ns, policy);
    }

    /// Closes the current round in streaming mode: commits everything still
    /// queued on the ring, serves any remaining pending batch, folds in the
    /// micro-batches already closed by watermarks this round, runs the
    /// once-per-round health pass and advances the round counter.
    ///
    /// With no intermediate watermark fired this is equivalent to
    /// [`ApServer::process_round`] (everything serves as one batch), which is
    /// how the lockstep drivers remain the bit-exact degenerate case.
    ///
    /// # Errors
    /// Same contract and partial-round semantics as
    /// [`ApServer::process_round`].
    pub fn process_round_streaming(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<RoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        let outcome = self.core.finalize_stream_round(&engine, round, policy);
        self.last_micro_closes = outcome.micro_closes;
        outcome.into_summary(round)
    }

    /// How many watermark-triggered micro-batch closes the most recent
    /// streaming round performed (barrier rounds leave it untouched).
    pub fn last_micro_closes(&self) -> usize {
        self.last_micro_closes
    }

    /// The latest reconstructed feedback of station `id`, in the tail's flat
    /// real-interleaved layout.
    pub fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        self.core
            .sessions
            .get(id)
            .and_then(StationSession::feedback)
    }

    /// The latest feedback of station `id` materialized as per-subcarrier
    /// `Nt x Nss` beamforming matrices.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] / [`ServeError::NoFeedback`] when the
    /// station is missing or was never served.
    pub fn feedback_matrices_of(
        &self,
        id: StationId,
    ) -> Result<Vec<mimo_math::CMatrix>, ServeError> {
        let session = self
            .core
            .sessions
            .get(id)
            .ok_or(ServeError::UnknownStation(id))?;
        let flat = session.feedback().ok_or(ServeError::NoFeedback(id))?;
        self.models[session.model_key()]
            .feedback_to_matrices(flat)
            .map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Stacks the latest feedback of `ids` (in the given order) into the
    /// per-user layout [`wifi_phy::precoding::ZfPrecoder`] consumes. Matrix
    /// materialization happens here, per precoding group — deliberately off
    /// the per-round serving path.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] / [`ServeError::NoFeedback`] when a
    /// station is missing or was never served.
    pub fn group_feedback(&self, ids: &[StationId]) -> Result<BeamformingFeedback, ServeError> {
        ids.iter()
            .map(|&id| self.feedback_matrices_of(id))
            .collect()
    }

    /// Stations (id order) whose feedback is at most `max_age` rounds old,
    /// relative to the last closed round. Quarantined stations are excluded —
    /// their link is not trusted, so they never enter a precoding group.
    pub fn fresh_station_ids(&self, max_age: u64) -> Vec<StationId> {
        let now = self.round.saturating_sub(1);
        self.core
            .sessions
            .values()
            .filter(|s| s.is_fresh(now, max_age) && s.health() != SessionHealth::Quarantined)
            .map(StationSession::id)
            .collect()
    }

    /// Partitions fresh stations into MU-MIMO groups the zero-forcing precoder
    /// can serve simultaneously: stations sharing a model, chunked so each
    /// group's total stream count stays within the AP's `Nt` antennas.
    pub fn mu_mimo_groups(&self, max_age: u64) -> Vec<Vec<StationId>> {
        let fresh = self.fresh_station_ids(max_age);
        let mut groups = Vec::new();
        for key in 0..self.models.len() {
            let config = self.models[key].config();
            let per_group = (config.mimo.nt / config.mimo.nss.max(1)).max(1);
            let members: Vec<StationId> = fresh
                .iter()
                .copied()
                .filter(|id| self.core.sessions[id].model_key() == key)
                .collect();
            groups.extend(members.chunks(per_group).map(<[StationId]>::to_vec));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use splitbeam::quantization::quantize_bottleneck;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
        let csi: Vec<f32> = channel
            .sample(&mut rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = model.compress_quantized(&csi, bits).unwrap();
        splitbeam::wire::encode_feedback(&payload).unwrap()
    }

    #[test]
    fn registration_is_validated() {
        let mut server = ApServer::new();
        assert_eq!(
            server.register_station(1, 0, 8),
            Err(ServeError::UnknownModel(0))
        );
        let key = server.register_model(model(1));
        assert!(server.register_station(1, key, 8).is_ok());
        assert_eq!(
            server.register_station(1, key, 8),
            Err(ServeError::DuplicateStation(1))
        );
        assert!(matches!(
            server.register_station(2, key, 0),
            Err(ServeError::Codec(_))
        ));
        assert_eq!(server.num_stations(), 1);
        assert!(server.model(key).is_some());
    }

    #[test]
    fn deregistration_enables_clean_reregistration() {
        let m = model(9);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(5, key, 8).unwrap();
        server.ingest_wire(5, &station_frame(&m, 40, 8)).unwrap();
        server.process_round().unwrap();
        assert!(server.feedback_of(5).is_some());
        assert_eq!(
            server.deregister_station(77),
            Err(ServeError::UnknownStation(77))
        );
        server.deregister_station(5).unwrap();
        assert_eq!(server.num_stations(), 0);
        assert_eq!(
            server.ingest_wire(5, &station_frame(&m, 41, 8)),
            Err(ServeError::UnknownStation(5))
        );
        // Re-registration starts from a blank session.
        server.register_station(5, key, 8).unwrap();
        let session = server.session(5).unwrap();
        assert!(session.feedback().is_none());
        assert_eq!(session.payloads_ingested(), 0);
        assert_eq!(session.joined_round(), 1);
    }

    #[test]
    fn ingest_validates_width_and_dimension() {
        let m = model(2);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(7, key, 8).unwrap();

        let frame = station_frame(&m, 3, 8);
        assert!(matches!(
            server.ingest_wire(99, &frame),
            Err(ServeError::UnknownStation(99))
        ));
        // Wrong announced width.
        let narrow = station_frame(&m, 3, 4);
        assert!(matches!(
            server.ingest_wire(7, &narrow),
            Err(ServeError::Codec(_))
        ));
        // Wrong bottleneck width.
        let short = quantize_bottleneck(&[0.5; 3], 8);
        assert!(matches!(
            server.ingest_payload(7, short, 10),
            Err(ServeError::Codec(_))
        ));
        // Valid frame; a second one in the same round replaces the first.
        assert_eq!(server.ingest_wire(7, &frame).unwrap(), frame.len());
        server.ingest_wire(7, &frame).unwrap();
        assert_eq!(server.pending_count(), 1);
        assert_eq!(server.session(7).unwrap().payloads_ingested(), 2);
    }

    #[test]
    fn corrupt_frames_feed_health_and_quarantine() {
        let m = model(11);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(0, key, 8).unwrap();
        let good = station_frame(&m, 90, 8);
        let mut bad = good.clone();
        bad[20] ^= 0x10; // damage a payload byte; the CRC must catch it
        let policy = server.health_policy();
        assert_eq!(policy.quarantine_after_corrupt, 3);

        // Two corrupt frames: rejected and counted, station still accepted.
        for _ in 0..2 {
            assert!(matches!(
                server.ingest_wire(0, &bad),
                Err(ServeError::Corrupt(0, _))
            ));
        }
        assert_eq!(server.session(0).unwrap().corrupt_streak(), 2);
        // The third crosses the threshold: quarantined for 8 rounds.
        assert!(matches!(
            server.ingest_wire(0, &bad),
            Err(ServeError::Corrupt(0, _))
        ));
        let session = server.session(0).unwrap();
        assert_eq!(session.health(), SessionHealth::Quarantined);
        assert_eq!(session.quarantined_until(), Some(policy.quarantine_rounds));
        // Even a pristine frame is rejected while quarantined.
        assert_eq!(
            server.ingest_wire(0, &good),
            Err(ServeError::Quarantined(0))
        );
        // The close reports the corrupt frames and keeps the station out of
        // MU-MIMO grouping.
        let summary = server.process_round().unwrap();
        assert_eq!(summary.corrupt, 3);
        assert_eq!(summary.served, 0);
        assert!(server.fresh_station_ids(u64::MAX).is_empty());
        // Quarantine expires after `quarantine_rounds` closes; the station
        // then reports normally again.
        for _ in 1..policy.quarantine_rounds {
            assert_eq!(
                server.ingest_wire(0, &good),
                Err(ServeError::Quarantined(0))
            );
            server.process_round().unwrap();
        }
        assert_eq!(server.current_round(), policy.quarantine_rounds);
        server.ingest_wire(0, &good).unwrap();
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.corrupt), (1, 0));
        assert_eq!(server.session(0).unwrap().health(), SessionHealth::Healthy);
        assert_eq!(server.fresh_station_ids(0), vec![0]);
    }

    #[test]
    fn duplicate_sequenced_frames_are_suppressed() {
        let m = model(13);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(4, key, 8).unwrap();
        let frame = station_frame(&m, 91, 8);
        let payload = {
            let mut buf = splitbeam::quantization::quantize_bottleneck(&[0.0; 1], 8);
            splitbeam::wire::decode_feedback_into(&frame, &mut buf).unwrap();
            buf
        };
        let seq5 = splitbeam::wire::encode_feedback_with_seq(&payload, 5).unwrap();
        let seq6 = splitbeam::wire::encode_feedback_with_seq(&payload, 6).unwrap();

        server.ingest_wire(4, &seq5).unwrap();
        // Re-delivery of the pending sequence number is suppressed.
        assert_eq!(
            server.ingest_wire(4, &seq5),
            Err(ServeError::DuplicateFrame(4, 5))
        );
        assert_eq!(server.session(4).unwrap().payloads_ingested(), 1);
        // A different sequence number replaces the pending payload.
        server.ingest_wire(4, &seq6).unwrap();
        assert_eq!(server.session(4).unwrap().payloads_ingested(), 2);
        // Unsequenced (seq 0) frames keep last-wins semantics.
        server.ingest_wire(4, &frame).unwrap();
        server.ingest_wire(4, &frame).unwrap();
        assert_eq!(server.session(4).unwrap().payloads_ingested(), 4);
        assert_eq!(server.pending_count(), 1);
    }

    #[test]
    fn silent_stations_are_stale_served_up_to_the_cap() {
        let m = model(17);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        server.register_station(0, key, 8).unwrap();
        server.ingest_wire(0, &station_frame(&m, 92, 8)).unwrap();
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.stale_served), (1, 0));
        let cap = server.health_policy().stale_serve_cap;
        // While within the staleness cap the silent station is still carried
        // by last-known-good feedback...
        for age in 1..=cap {
            let summary = server.process_round().unwrap();
            assert_eq!(
                (summary.stale, summary.stale_served),
                (1, 1),
                "age {age} within cap {cap}"
            );
        }
        // ...then it falls out.
        let summary = server.process_round().unwrap();
        assert_eq!((summary.stale, summary.stale_served), (1, 0));
        // Two consecutive misses degraded the session long ago.
        assert_eq!(server.session(0).unwrap().health(), SessionHealth::Degraded);
    }

    #[test]
    fn batched_round_matches_serial_round_exactly() {
        let m = model(4);
        let stations = 5u64;
        let mut batched = ApServer::new();
        let mut serial = ApServer::new();
        let bkey = batched.register_model(m.clone());
        let skey = serial.register_model(m.clone());
        for id in 0..stations {
            batched.register_station(id, bkey, 6).unwrap();
            serial.register_station(id, skey, 6).unwrap();
        }
        for round in 0..3u64 {
            for id in 0..stations {
                // Station `stations - 1` skips round 1 to exercise staleness.
                if round == 1 && id == stations - 1 {
                    continue;
                }
                let frame = station_frame(&m, 100 + round * stations + id, 6);
                batched.ingest_wire(id, &frame).unwrap();
                serial.ingest_wire(id, &frame).unwrap();
            }
            let b = batched.process_round().unwrap();
            let s = serial.process_round_serial().unwrap();
            assert_eq!(b, s, "round summaries must agree");
            if round == 1 {
                assert_eq!(b.served, stations as usize - 1);
                assert_eq!(b.stale, 1);
                assert_eq!(b.awaiting_first_report, 0);
            }
            for id in 0..stations {
                assert_eq!(
                    batched.feedback_of(id),
                    serial.feedback_of(id),
                    "round {round}, station {id}: batched and serial must be bit-exact"
                );
            }
        }
        // The skipping station's feedback aged but was refreshed in round 2.
        assert_eq!(batched.session(stations - 1).unwrap().last_round(), Some(2));
    }

    #[test]
    fn staleness_and_grouping() {
        let m = model(5);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        for id in 0..5u64 {
            server.register_station(id, key, 8).unwrap();
        }
        // Round 0: stations 0..3 report; 3 and 4 stay silent (and have never
        // reported, so they await a first report rather than going stale).
        for id in 0..3u64 {
            let frame = station_frame(&m, 50 + id, 8);
            server.ingest_wire(id, &frame).unwrap();
        }
        let summary = server.process_round().unwrap();
        assert_eq!(
            (
                summary.served,
                summary.stale,
                summary.awaiting_first_report,
                summary.batches
            ),
            (3, 0, 2, 1)
        );
        assert_eq!(server.fresh_station_ids(0), vec![0, 1, 2]);
        // Nt = 2, Nss = 1 -> groups of at most two stations.
        let groups = server.mu_mimo_groups(0);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
        let feedback = server.group_feedback(&groups[0]).unwrap();
        assert_eq!(feedback.len(), 2);
        assert_eq!(feedback[0].len(), 56);
        assert_eq!(server.group_feedback(&[4]), Err(ServeError::NoFeedback(4)));
        assert_eq!(
            server.group_feedback(&[77]),
            Err(ServeError::UnknownStation(77))
        );
        // One idle round: the previously-served stations' feedback goes stale,
        // the never-reporting pair still awaits its first report.
        let summary = server.process_round().unwrap();
        assert_eq!(
            (summary.served, summary.stale, summary.awaiting_first_report),
            (0, 3, 2)
        );
        assert!(server.fresh_station_ids(0).is_empty());
        assert_eq!(server.fresh_station_ids(1), vec![0, 1, 2]);
    }

    #[test]
    fn steady_state_round_recycles_feedback_buffers() {
        let m = model(8);
        let mut server = ApServer::new();
        let key = server.register_model(m.clone());
        for id in 0..3u64 {
            server.register_station(id, key, 6).unwrap();
        }
        for id in 0..3u64 {
            server
                .ingest_wire(id, &station_frame(&m, 70 + id, 6))
                .unwrap();
        }
        server.process_round().unwrap();
        let ptrs: Vec<*const f32> = (0..3u64)
            .map(|id| server.feedback_of(id).unwrap().as_ptr())
            .collect();
        for round in 0..2u64 {
            for id in 0..3u64 {
                let frame = station_frame(&m, 80 + round * 3 + id, 6);
                server.ingest_wire(id, &frame).unwrap();
            }
            server.process_round().unwrap();
            for (id, &ptr) in ptrs.iter().enumerate() {
                assert_eq!(
                    server.feedback_of(id as StationId).unwrap().as_ptr(),
                    ptr,
                    "steady-state serving must reuse station {id}'s feedback buffer"
                );
            }
        }
        assert_eq!(server.pending_count(), 0);
    }

    #[test]
    fn multiple_models_batch_independently() {
        let m_a = model(6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m_b = SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneQuarter,
            ),
            &mut rng,
        );
        let mut server = ApServer::new();
        let key_a = server.register_model(m_a.clone());
        let key_b = server.register_model(m_b.clone());
        server.register_station(0, key_a, 8).unwrap();
        server.register_station(1, key_b, 8).unwrap();
        server.ingest_wire(0, &station_frame(&m_a, 60, 8)).unwrap();
        server.ingest_wire(1, &station_frame(&m_b, 61, 8)).unwrap();
        let summary = server.process_round().unwrap();
        assert_eq!((summary.served, summary.batches), (2, 2));
    }

    /// Regression test for the historical error-path bug: a failed batch for
    /// one model used to consume the pending payloads of *every* station,
    /// including stations bound to other models whose batch never ran. The
    /// fixed semantics: the failure is scoped to the failing model's batch,
    /// every other model's batch still runs and stores its reconstructions —
    /// and the batched and serial paths agree on the failure path too (the
    /// failing model's batch is all-or-nothing in both, even for stations of
    /// that model whose own payload was fine).
    #[test]
    fn failed_batch_consumes_only_its_own_model() {
        let m_a = model(21);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let m_b = SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneQuarter,
            ),
            &mut rng,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let m_c = SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneSixteenth,
            ),
            &mut rng,
        );
        for serial in [false, true] {
            let mut server = ApServer::new();
            let key_a = server.register_model(m_a.clone());
            let key_b = server.register_model(m_b.clone());
            let key_c = server.register_model(m_c.clone());
            server.register_station(0, key_a, 8).unwrap();
            // Model B serves two stations: 1 (valid payload) and 3 (payload
            // corrupted below). Station 1's id sorts before 3, so a
            // station-at-a-time pass would reconstruct it before hitting the
            // failure — the all-or-nothing commit must prevent that.
            server.register_station(1, key_b, 8).unwrap();
            server.register_station(2, key_c, 8).unwrap();
            server.register_station(3, key_b, 8).unwrap();
            server.ingest_wire(0, &station_frame(&m_a, 60, 8)).unwrap();
            server.ingest_wire(1, &station_frame(&m_b, 61, 8)).unwrap();
            server.ingest_wire(2, &station_frame(&m_c, 62, 8)).unwrap();
            server.ingest_wire(3, &station_frame(&m_b, 63, 8)).unwrap();
            // Corrupt station 3's validated payload so model B's batch fails
            // at reconstruction time (validation already passed at ingest).
            server
                .core
                .sessions
                .get_mut(3)
                .unwrap()
                .payload_slot()
                .codes
                .truncate(3);
            let result = if serial {
                server.process_round_serial()
            } else {
                server.process_round()
            };
            assert!(
                matches!(result, Err(ServeError::Model(_))),
                "serial={serial}: round must report the failed batch"
            );
            // The round advanced and the healthy models were still served.
            assert_eq!(server.current_round(), 1, "serial={serial}");
            assert!(server.feedback_of(0).is_some(), "serial={serial}");
            assert!(server.feedback_of(2).is_some(), "serial={serial}");
            // The failed model's payloads were all consumed without
            // reconstruction — including station 1's perfectly valid one.
            assert!(server.feedback_of(1).is_none(), "serial={serial}");
            assert!(server.feedback_of(3).is_none(), "serial={serial}");
            assert_eq!(server.pending_count(), 0, "serial={serial}");
        }
    }
}
