//! Simulated multi-station sounding-round traffic for the serving layer.
//!
//! The driver splits the world exactly along the air interface: station-side
//! work (channel estimation → head compression → quantization → wire encoding)
//! happens in [`generate_traffic`] ahead of time, and the AP-side serving path
//! ([`serve_traffic`]) consumes only wire frames — so benchmarks can time the
//! server in isolation and compare the coalesced batched path against the
//! station-at-a-time reference on identical traffic.

use crate::server::{ApServer, RoundSummary};
use crate::session::StationId;
use crate::ServeError;
use rand::Rng;
use splitbeam::model::SplitBeamModel;
use splitbeam::wire;
use wifi_phy::channel::{ChannelModel, ChannelSnapshot, EnvironmentProfile};
use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig, LinkReport};
use wifi_phy::ofdm::Bandwidth;

/// Shape of one simulated serving workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of stations associated with the AP.
    pub stations: usize,
    /// Number of sounding rounds.
    pub rounds: usize,
    /// Bottleneck quantizer width every station announces.
    pub bits_per_value: u8,
    /// Every `drop_every`-th (station, round) pair skips its report, leaving
    /// that station stale for the round; `0` disables drops.
    pub drop_every: usize,
    /// Per-stream SNR of the MU-MIMO link check in dB.
    pub snr_db: f64,
}

impl SimConfig {
    /// A small default workload: 8 stations, 4 rounds, 4-bit bottleneck, one
    /// in eleven reports dropped.
    pub fn small() -> Self {
        Self {
            stations: 8,
            rounds: 4,
            bits_per_value: 4,
            drop_every: 11,
            snr_db: 25.0,
        }
    }
}

/// Pre-generated station-side traffic: the wire frames of every round plus the
/// final-round true channels for the link check.
#[derive(Debug, Clone)]
pub struct SimTraffic {
    /// `frames[r][s]` is the wire frame station `s` transmits in round `r`
    /// (`None` when the report was dropped).
    pub frames: Vec<Vec<Option<Vec<u8>>>>,
    /// `final_csi[s]` is station `s`'s true per-subcarrier channel in the last
    /// round it reported.
    pub final_csi: Vec<Vec<mimo_math::CMatrix>>,
    /// Channel bandwidth (for rebuilding snapshots).
    pub bandwidth: Bandwidth,
    /// Spatial streams per station.
    pub nss: usize,
}

impl SimTraffic {
    /// Total wire bytes across all rounds and stations.
    pub fn total_wire_bytes(&self) -> usize {
        self.frames
            .iter()
            .flatten()
            .filter_map(|f| f.as_ref().map(Vec::len))
            .sum()
    }

    /// Number of frames actually transmitted (non-dropped reports).
    pub fn total_frames(&self) -> usize {
        self.frames.iter().flatten().flatten().count()
    }
}

/// Runs the station side of `cfg.rounds` sounding rounds: every station
/// estimates an independent channel, compresses it through the model head,
/// quantizes at `cfg.bits_per_value` bits and wire-encodes the payload.
///
/// # Panics
/// Panics if `cfg.stations` or `cfg.rounds` is zero, or the model rejects the
/// generated CSI (impossible for a model matching its own `MimoConfig`).
pub fn generate_traffic(cfg: &SimConfig, model: &SplitBeamModel, rng: &mut impl Rng) -> SimTraffic {
    assert!(cfg.stations > 0 && cfg.rounds > 0, "empty workload");
    let mimo = &model.config().mimo;
    let channel = ChannelModel::with_rx_antennas(
        EnvironmentProfile::e1(),
        mimo.bandwidth,
        mimo.nt,
        mimo.nr,
        1,
        mimo.nss,
    );
    let mut frames = Vec::with_capacity(cfg.rounds);
    let mut final_csi: Vec<Vec<mimo_math::CMatrix>> = vec![Vec::new(); cfg.stations];
    let mut event = 0usize;
    for _ in 0..cfg.rounds {
        let mut round_frames = Vec::with_capacity(cfg.stations);
        for station_csi in final_csi.iter_mut() {
            event += 1;
            let dropped = cfg.drop_every != 0 && event.is_multiple_of(cfg.drop_every);
            if dropped {
                round_frames.push(None);
                continue;
            }
            let snapshot = channel.sample(rng);
            let csi: Vec<f32> = snapshot
                .csi_real_vector(0)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            let payload = model
                .compress_quantized(&csi, cfg.bits_per_value)
                .expect("model accepts its own configuration's CSI");
            let frame = wire::encode_feedback(&payload).expect("freshly quantized payload encodes");
            *station_csi = snapshot.csi(0).to_vec();
            round_frames.push(Some(frame));
        }
        frames.push(round_frames);
    }
    SimTraffic {
        frames,
        final_csi,
        bandwidth: mimo.bandwidth,
        nss: mimo.nss,
    }
}

/// How [`serve_traffic`] closes each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Coalesced: one batched tail inference per model per round.
    Batched,
    /// Reference: one tail inference per station.
    Serial,
}

/// Builds a server with `model` registered and stations `0..stations`
/// associated at `bits_per_value` bits.
///
/// # Panics
/// Panics on invalid `bits_per_value` (registration is infallible otherwise).
pub fn build_server(model: SplitBeamModel, stations: usize, bits_per_value: u8) -> ApServer {
    let mut server = ApServer::new();
    let key = server.register_model(model);
    for id in 0..stations as StationId {
        server
            .register_station(id, key, bits_per_value)
            .expect("fresh server accepts fleet registration");
    }
    server
}

/// Feeds pre-generated traffic through the server, closing one round per
/// traffic round. This is the AP-side hot path benchmarks time.
///
/// # Errors
/// Propagates ingest/reconstruction failures (impossible for traffic generated
/// against the registered model).
pub fn serve_traffic(
    server: &mut ApServer,
    traffic: &SimTraffic,
    mode: ServeMode,
) -> Result<Vec<RoundSummary>, ServeError> {
    let mut summaries = Vec::with_capacity(traffic.frames.len());
    for round_frames in &traffic.frames {
        for (station, frame) in round_frames.iter().enumerate() {
            if let Some(frame) = frame {
                server.ingest_wire(station as StationId, frame)?;
            }
        }
        summaries.push(match mode {
            ServeMode::Batched => server.process_round()?,
            ServeMode::Serial => server.process_round_serial()?,
        });
    }
    Ok(summaries)
}

/// Runs the end-to-end MU-MIMO link check over the served feedback: fresh
/// stations are partitioned into `Nt`-sized zero-forcing groups, each group's
/// reconstructed `V̂` drives the precoder, and the payload propagates through
/// the stations' *true* final-round channels.
///
/// `max_age` bounds how stale a station's feedback may be (in rounds) to join
/// a group. Returns the merged report across groups; groups of a single
/// station are skipped (no inter-user interference to measure).
///
/// # Errors
/// [`ServeError::Link`] when the precoder or link simulation rejects a group.
pub fn link_check(
    server: &ApServer,
    traffic: &SimTraffic,
    max_age: u64,
    snr_db: f64,
    rng: &mut impl Rng,
) -> Result<LinkReport, ServeError> {
    let link_cfg = LinkConfig {
        snr_db,
        ..LinkConfig::default()
    };
    let mut merged = LinkReport::empty();
    for group in server.mu_mimo_groups(max_age) {
        if group.len() < 2 {
            continue;
        }
        let feedback = server.group_feedback(&group)?;
        let per_user: Vec<Vec<mimo_math::CMatrix>> = group
            .iter()
            .map(|&id| traffic.final_csi[id as usize].clone())
            .collect();
        let snapshot = ChannelSnapshot::from_matrices(traffic.bandwidth, traffic.nss, per_user);
        let report = simulate_mu_mimo_ber(&snapshot, &feedback, &link_cfg, rng)
            .map_err(|e| ServeError::Link(e.to_string()))?;
        merged.merge(&report);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::ofdm::MimoConfig;

    fn trained_free_model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    #[test]
    fn traffic_has_expected_shape() {
        let model = trained_free_model(1);
        let cfg = SimConfig {
            stations: 3,
            rounds: 2,
            bits_per_value: 4,
            drop_every: 5,
            snr_db: 25.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        assert_eq!(traffic.frames.len(), 2);
        assert_eq!(traffic.frames[0].len(), 3);
        // Events 5 (round 1, station 1) dropped out of 6.
        assert_eq!(traffic.total_frames(), 5);
        assert!(traffic.frames[1][1].is_none());
        let expected_frame_len = wire::encoded_len(model.bottleneck_dim(), 4);
        for frame in traffic.frames.iter().flatten().flatten() {
            assert_eq!(frame.len(), expected_frame_len);
        }
        assert_eq!(traffic.total_wire_bytes(), 5 * expected_frame_len);
        assert_eq!(traffic.final_csi.len(), 3);
        assert_eq!(traffic.final_csi[0].len(), 56);
    }

    /// Satellite determinism test: the serving layer's batched reconstruction
    /// matches station-at-a-time reconstruction exactly, over multiple rounds
    /// with drops.
    #[test]
    fn batched_serving_is_bit_exact_with_serial() {
        let model = trained_free_model(3);
        let cfg = SimConfig {
            stations: 6,
            rounds: 3,
            bits_per_value: 4,
            drop_every: 7,
            snr_db: 25.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        let mut batched = build_server(model.clone(), cfg.stations, cfg.bits_per_value);
        let mut serial = build_server(model, cfg.stations, cfg.bits_per_value);
        let b = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
        let s = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
        assert_eq!(b, s);
        for id in 0..cfg.stations as StationId {
            assert_eq!(
                batched.feedback_of(id),
                serial.feedback_of(id),
                "station {id} batched vs serial"
            );
            assert!(batched.feedback_of(id).is_some());
        }
    }

    #[test]
    fn link_check_runs_on_fresh_groups() {
        let model = trained_free_model(5);
        let cfg = SimConfig {
            stations: 4,
            rounds: 2,
            bits_per_value: 8,
            drop_every: 0,
            snr_db: 25.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        let mut server = build_server(model, cfg.stations, cfg.bits_per_value);
        serve_traffic(&mut server, &traffic, ServeMode::Batched).unwrap();
        let report = link_check(&server, &traffic, 0, cfg.snr_db, &mut rng).unwrap();
        // Two groups of two stations, every station carries payload bits.
        assert_eq!(report.per_user_bits.len(), 2);
        assert!(report.per_user_bits.iter().all(|&b| b > 0));
        assert!(report.ber().is_finite());
    }
}
