//! Simulated multi-station sounding-round traffic for the serving layer.
//!
//! The driver splits the world exactly along the air interface: station-side
//! work (channel estimation → head compression → quantization → wire encoding)
//! happens in [`generate_traffic`] ahead of time, and the AP-side serving path
//! ([`serve_traffic`]) consumes only wire frames — so benchmarks can time the
//! server in isolation and compare the coalesced batched path, the
//! station-at-a-time reference and the sharded parallel path on identical
//! traffic.
//!
//! Traffic can include **session churn**: stations joining mid-run, stations
//! leaving, and bursty rounds where half the fleet drops its report at once
//! ([`ChurnConfig`]). Churn is pre-scheduled deterministically into the
//! traffic ([`ChurnEvent`]), so every server type replays the identical
//! workload.

use crate::server::{ApServer, RoundSummary};
use crate::session::StationId;
use crate::shard::ShardedApServer;
use crate::timing::{DeadlinePolicy, FrameStamp};
use crate::ServeError;
use rand::Rng;
use splitbeam::model::SplitBeamModel;
use splitbeam::wire;
use std::collections::BTreeSet;
use wifi_phy::channel::{ChannelModel, ChannelSnapshot, EnvironmentProfile};
use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig, LinkReport};
use wifi_phy::ofdm::Bandwidth;

/// Session-churn shape of a simulated workload. All schedules are
/// deterministic in the round index; `0` disables the respective mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnConfig {
    /// Every `join_every`-th round (after round 0) one brand-new station id
    /// joins the fleet.
    pub join_every: usize,
    /// Every `leave_every`-th round (after round 0) the longest-standing
    /// active station leaves.
    pub leave_every: usize,
    /// Every `burst_every`-th round, every other active station drops its
    /// report — a bursty loss event on top of `drop_every`.
    pub burst_every: usize,
}

impl ChurnConfig {
    /// No churn: the fleet is static and only `drop_every` losses apply.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any churn mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.join_every != 0 || self.leave_every != 0 || self.burst_every != 0
    }
}

/// Shape of one simulated serving workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of stations associated with the AP at round 0.
    pub stations: usize,
    /// Number of sounding rounds.
    pub rounds: usize,
    /// Bottleneck quantizer width every station announces.
    pub bits_per_value: u8,
    /// Every `drop_every`-th (station, round) pair skips its report, leaving
    /// that station stale for the round; `0` disables drops.
    pub drop_every: usize,
    /// Per-stream SNR of the MU-MIMO link check in dB.
    pub snr_db: f64,
    /// Session churn: joins, departures and bursty drops.
    pub churn: ChurnConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            stations: 8,
            rounds: 4,
            bits_per_value: 4,
            drop_every: 11,
            snr_db: 25.0,
            churn: ChurnConfig::none(),
        }
    }
}

impl SimConfig {
    /// A small default workload: 8 stations, 4 rounds, 4-bit bottleneck, one
    /// in eleven reports dropped, no churn.
    pub fn small() -> Self {
        Self::default()
    }
}

/// One pre-scheduled session-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new station associates (before the round's frames are ingested).
    Join(StationId),
    /// A station disassociates.
    Leave(StationId),
}

/// One round of pre-generated traffic: lifecycle events applied before
/// ingest, then the frames of every active station in ascending id order.
#[derive(Debug, Clone, Default)]
pub struct SimRound {
    /// Joins/leaves applied before this round's frames.
    pub events: Vec<ChurnEvent>,
    /// `(station, frame)` pairs; `None` marks a dropped report.
    pub frames: Vec<(StationId, Option<Vec<u8>>)>,
}

/// Pre-generated station-side traffic: per-round churn events and wire
/// frames, plus the final-round true channels for the link check. Traffic is
/// always generated against **model key 0** of the consuming server.
#[derive(Debug, Clone)]
pub struct SimTraffic {
    /// The rounds, in order.
    pub rounds: Vec<SimRound>,
    /// `final_csi[id]` is station `id`'s true per-subcarrier channel in the
    /// last round it reported (empty when it never reported).
    pub final_csi: Vec<Vec<mimo_math::CMatrix>>,
    /// Channel bandwidth (for rebuilding snapshots).
    pub bandwidth: Bandwidth,
    /// Spatial streams per station.
    pub nss: usize,
    /// Quantizer width the stations announce (used when churn re-registers).
    pub bits_per_value: u8,
    /// Number of stations registered before round 0.
    pub initial_stations: usize,
    /// One past the highest station id that ever appears in the traffic.
    pub max_station_id: StationId,
}

impl SimTraffic {
    /// Total wire bytes across all rounds and stations.
    pub fn total_wire_bytes(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.frames.iter())
            .filter_map(|(_, f)| f.as_ref().map(Vec::len))
            .sum()
    }

    /// Number of frames actually transmitted (non-dropped reports).
    pub fn total_frames(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.frames.iter().filter(|(_, f)| f.is_some()).count())
            .sum()
    }

    /// Number of scheduled reports that were dropped (including bursts).
    pub fn total_drops(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.frames.iter().filter(|(_, f)| f.is_none()).count())
            .sum()
    }

    /// Scheduled joins across the run.
    pub fn total_joins(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|e| matches!(e, ChurnEvent::Join(_)))
            .count()
    }

    /// Scheduled departures across the run.
    pub fn total_leaves(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|e| matches!(e, ChurnEvent::Leave(_)))
            .count()
    }
}

/// Runs the station side of `cfg.rounds` sounding rounds: every active
/// station estimates an independent channel, compresses it through the model
/// head, quantizes at `cfg.bits_per_value` bits and wire-encodes the payload.
/// Churn (joins, leaves, bursty drops) is scheduled deterministically from
/// `cfg.churn`.
///
/// # Panics
/// Panics if `cfg.stations` or `cfg.rounds` is zero, or the model rejects the
/// generated CSI (impossible for a model matching its own `MimoConfig`).
pub fn generate_traffic(cfg: &SimConfig, model: &SplitBeamModel, rng: &mut impl Rng) -> SimTraffic {
    assert!(cfg.stations > 0 && cfg.rounds > 0, "empty workload");
    let mimo = &model.config().mimo;
    let channel = ChannelModel::with_rx_antennas(
        EnvironmentProfile::e1(),
        mimo.bandwidth,
        mimo.nt,
        mimo.nr,
        1,
        mimo.nss,
    );
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut final_csi: Vec<Vec<mimo_math::CMatrix>> = vec![Vec::new(); cfg.stations];
    let mut active: BTreeSet<StationId> = (0..cfg.stations as StationId).collect();
    let mut next_id = cfg.stations as StationId;
    let mut event = 0usize;
    for r in 0..cfg.rounds {
        let mut round = SimRound::default();
        if r > 0 {
            if cfg.churn.join_every != 0 && r.is_multiple_of(cfg.churn.join_every) {
                round.events.push(ChurnEvent::Join(next_id));
                active.insert(next_id);
                final_csi.push(Vec::new());
                next_id += 1;
            }
            if cfg.churn.leave_every != 0 && r.is_multiple_of(cfg.churn.leave_every) {
                if let Some(&oldest) = active.iter().next() {
                    if active.len() > 1 {
                        active.remove(&oldest);
                        round.events.push(ChurnEvent::Leave(oldest));
                    }
                }
            }
        }
        let burst = cfg.churn.burst_every != 0 && (r + 1).is_multiple_of(cfg.churn.burst_every);
        for (i, &id) in active.iter().enumerate() {
            event += 1;
            let dropped = (cfg.drop_every != 0 && event.is_multiple_of(cfg.drop_every))
                || (burst && i % 2 == 0);
            if dropped {
                round.frames.push((id, None));
                continue;
            }
            let snapshot = channel.sample(rng);
            let csi: Vec<f32> = snapshot
                .csi_real_vector(0)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            let payload = model
                .compress_quantized(&csi, cfg.bits_per_value)
                .expect("model accepts its own configuration's CSI");
            let frame = wire::encode_feedback(&payload).expect("freshly quantized payload encodes");
            final_csi[id as usize] = snapshot.csi(0).to_vec();
            round.frames.push((id, Some(frame)));
        }
        rounds.push(round);
    }
    SimTraffic {
        rounds,
        final_csi,
        bandwidth: mimo.bandwidth,
        nss: mimo.nss,
        bits_per_value: cfg.bits_per_value,
        initial_stations: cfg.stations,
        max_station_id: next_id,
    }
}

/// How [`serve_traffic`] closes each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Coalesced: one batched tail inference per model per round (parallel
    /// across shards on a [`ShardedApServer`]).
    Batched,
    /// Reference: one tail inference per station (sequential across shards).
    Serial,
    /// Streaming: no round barrier — frames queue on per-shard rings and
    /// shards micro-close on deadline watermarks; the round close only
    /// flushes what watermarks have not already served. With no intermediate
    /// watermark fired this degenerates bit-exactly to [`ServeMode::Batched`].
    Streaming,
}

/// Anything that can replay driver traffic: the single-shard [`ApServer`]
/// and the parallel [`ShardedApServer`]. The trait is the seam that lets one
/// `serve_traffic` implementation drive (and cross-compare) every server
/// flavor on identical workloads.
pub trait RoundServing {
    /// Associates a station (see [`ApServer::register_station`]).
    ///
    /// # Errors
    /// Registration validation/capacity errors.
    fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError>;

    /// Removes a station's session.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] when the id is not registered.
    fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError>;

    /// Whether station `id` currently has a session (used by drivers layered
    /// on top of a server to mirror its lifecycle, e.g. after idle eviction).
    fn is_registered(&self, id: StationId) -> bool;

    /// Ingests one wire frame for the current round.
    ///
    /// # Errors
    /// Same contract as [`ApServer::ingest_wire`].
    fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError>;

    /// Ingests one wire frame with its virtual-time stamp, so a deadline-aware
    /// close can classify it against the Eq. 7d budget.
    ///
    /// # Errors
    /// Same contract as [`RoundServing::ingest_wire`].
    fn ingest_wire_at(
        &mut self,
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
    ) -> Result<usize, ServeError>;

    /// Closes the current round in the requested mode.
    ///
    /// # Errors
    /// [`ServeError::Model`] on reconstruction failure.
    fn close_round(&mut self, mode: ServeMode) -> Result<RoundSummary, ServeError>;

    /// Closes the current round enforcing `policy`: expired reports are
    /// consumed without reconstruction, late-but-usable reports are served but
    /// flagged.
    ///
    /// # Errors
    /// Same contract as [`RoundServing::close_round`].
    fn close_round_deadline(
        &mut self,
        mode: ServeMode,
        policy: DeadlinePolicy,
    ) -> Result<RoundSummary, ServeError>;

    /// Stations evicted by the most recent round close (`0` for servers
    /// without an idle-eviction policy).
    fn evicted_in_last_round(&self) -> usize {
        0
    }

    /// The latest reconstructed feedback of station `id`.
    fn feedback_of(&self, id: StationId) -> Option<&[f32]>;
}

/// The streaming extension of [`RoundServing`]: servers whose ingest can
/// enqueue onto bounded per-shard rings and whose rounds can close through
/// watermark-driven micro-batches instead of a global barrier. Implemented by
/// both server flavors, so the event-driven driver can run every flavor in
/// streaming mode through one code path.
pub trait StreamServing: RoundServing {
    /// Switches between lockstep and streaming ingest. Only toggle while
    /// quiescent (no frames queued or pending).
    fn set_streaming(&mut self, on: bool);

    /// One watermark tick at virtual time `watermark_ns` with tick period
    /// `step_ns`: commits frames that have arrived by the watermark and
    /// micro-closes each shard whose oldest pending frame's service deadline
    /// (per `policy`, default [`DeadlinePolicy::eq7d`]) falls before the next
    /// watermark.
    fn advance_watermark(
        &mut self,
        watermark_ns: u64,
        step_ns: u64,
        policy: Option<DeadlinePolicy>,
    );

    /// Closes the current round in streaming mode: flushes queued frames,
    /// serves whatever the watermarks have not already micro-closed, and
    /// folds the micro-batch accounting into one round summary.
    ///
    /// # Errors
    /// Same contract as [`RoundServing::close_round`].
    fn finalize_stream_round(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<RoundSummary, ServeError>;
}

impl RoundServing for ApServer {
    fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        ApServer::register_station(self, id, model_key, bits_per_value)
    }

    fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError> {
        ApServer::deregister_station(self, id)
    }

    fn is_registered(&self, id: StationId) -> bool {
        self.session(id).is_some()
    }

    fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        ApServer::ingest_wire(self, id, frame)
    }

    fn ingest_wire_at(
        &mut self,
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
    ) -> Result<usize, ServeError> {
        ApServer::ingest_wire_at(self, id, frame, stamp)
    }

    fn close_round(&mut self, mode: ServeMode) -> Result<RoundSummary, ServeError> {
        match mode {
            ServeMode::Batched => self.process_round(),
            ServeMode::Serial => self.process_round_serial(),
            ServeMode::Streaming => self.process_round_streaming(None),
        }
    }

    fn close_round_deadline(
        &mut self,
        mode: ServeMode,
        policy: DeadlinePolicy,
    ) -> Result<RoundSummary, ServeError> {
        match mode {
            ServeMode::Batched => self.process_round_deadline(policy),
            ServeMode::Serial => self.process_round_serial_deadline(policy),
            ServeMode::Streaming => self.process_round_streaming(Some(policy)),
        }
    }

    fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        ApServer::feedback_of(self, id)
    }
}

impl StreamServing for ApServer {
    fn set_streaming(&mut self, on: bool) {
        ApServer::set_streaming(self, on);
    }

    fn advance_watermark(
        &mut self,
        watermark_ns: u64,
        step_ns: u64,
        policy: Option<DeadlinePolicy>,
    ) {
        ApServer::advance_watermark(self, watermark_ns, step_ns, policy);
    }

    fn finalize_stream_round(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<RoundSummary, ServeError> {
        self.process_round_streaming(policy)
    }
}

impl RoundServing for ShardedApServer {
    fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        ShardedApServer::register_station(self, id, model_key, bits_per_value)
    }

    fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError> {
        ShardedApServer::deregister_station(self, id)
    }

    fn is_registered(&self, id: StationId) -> bool {
        self.session(id).is_some()
    }

    fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        ShardedApServer::ingest_wire(self, id, frame)
    }

    fn ingest_wire_at(
        &mut self,
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
    ) -> Result<usize, ServeError> {
        ShardedApServer::ingest_wire_at(self, id, frame, stamp)
    }

    fn close_round(&mut self, mode: ServeMode) -> Result<RoundSummary, ServeError> {
        match mode {
            ServeMode::Batched => self.process_round().map(|s| s.as_round_summary()),
            ServeMode::Serial => self.process_round_serial().map(|s| s.as_round_summary()),
            ServeMode::Streaming => {
                ShardedApServer::finalize_stream_round(self, None).map(|s| s.as_round_summary())
            }
        }
    }

    fn close_round_deadline(
        &mut self,
        mode: ServeMode,
        policy: DeadlinePolicy,
    ) -> Result<RoundSummary, ServeError> {
        match mode {
            ServeMode::Batched => self
                .process_round_deadline(policy)
                .map(|s| s.as_round_summary()),
            ServeMode::Serial => self
                .process_round_serial_deadline(policy)
                .map(|s| s.as_round_summary()),
            ServeMode::Streaming => ShardedApServer::finalize_stream_round(self, Some(policy))
                .map(|s| s.as_round_summary()),
        }
    }

    fn evicted_in_last_round(&self) -> usize {
        ShardedApServer::evicted_in_last_round(self)
    }

    fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        ShardedApServer::feedback_of(self, id)
    }
}

impl StreamServing for ShardedApServer {
    fn set_streaming(&mut self, on: bool) {
        ShardedApServer::set_streaming(self, on);
    }

    fn advance_watermark(
        &mut self,
        watermark_ns: u64,
        step_ns: u64,
        policy: Option<DeadlinePolicy>,
    ) {
        ShardedApServer::advance_watermark(self, watermark_ns, step_ns, policy);
    }

    fn finalize_stream_round(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<RoundSummary, ServeError> {
        ShardedApServer::finalize_stream_round(self, policy).map(|s| s.as_round_summary())
    }
}

/// Builds a single-shard server with `model` registered and stations
/// `0..stations` associated at `bits_per_value` bits.
///
/// # Panics
/// Panics on invalid `bits_per_value` (registration is infallible otherwise).
pub fn build_server(model: SplitBeamModel, stations: usize, bits_per_value: u8) -> ApServer {
    let mut server = ApServer::new();
    let key = server.register_model(model);
    for id in 0..stations as StationId {
        server
            .register_station(id, key, bits_per_value)
            .expect("fresh server accepts fleet registration");
    }
    server
}

/// Builds a sharded server with `num_shards` shards, `model` registered and
/// stations `0..stations` associated at `bits_per_value` bits.
///
/// # Panics
/// Panics on invalid `bits_per_value` (registration is infallible otherwise).
pub fn build_sharded_server(
    model: SplitBeamModel,
    stations: usize,
    bits_per_value: u8,
    num_shards: usize,
) -> ShardedApServer {
    let mut server = ShardedApServer::new(num_shards);
    let key = server.register_model(model);
    for id in 0..stations as StationId {
        server
            .register_station(id, key, bits_per_value)
            .expect("fresh server accepts fleet registration");
    }
    server
}

/// What one full [`serve_traffic`] pass did, beyond the per-round summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOutcome {
    /// One summary per closed round.
    pub summaries: Vec<RoundSummary>,
    /// Stations that joined mid-run (scheduled churn).
    pub joins: usize,
    /// Stations that left mid-run (scheduled churn).
    pub leaves: usize,
    /// Frames from unknown stations that triggered a clean re-association
    /// (the station was evicted, then transmitted again).
    pub reassociations: usize,
    /// Stations evicted across all rounds (always `0` for servers without an
    /// idle-eviction policy).
    pub evictions: usize,
}

impl ServeOutcome {
    /// Total stations served across all rounds.
    pub fn total_served(&self) -> usize {
        self.summaries.iter().map(|s| s.served).sum()
    }
}

/// Feeds pre-generated traffic through any server, closing one round per
/// traffic round and applying the scheduled churn events. A frame from an
/// unknown station (evicted mid-run) triggers a clean re-association against
/// model key 0 before the frame is retried — exactly what a real AP does when
/// a dropped station transmits again.
///
/// # Errors
/// Propagates ingest/reconstruction failures (impossible for traffic
/// generated against the registered model).
pub fn serve_traffic<S: RoundServing>(
    server: &mut S,
    traffic: &SimTraffic,
    mode: ServeMode,
) -> Result<ServeOutcome, ServeError> {
    let mut outcome = ServeOutcome {
        summaries: Vec::with_capacity(traffic.rounds.len()),
        joins: 0,
        leaves: 0,
        reassociations: 0,
        evictions: 0,
    };
    for round in &traffic.rounds {
        for event in &round.events {
            match *event {
                ChurnEvent::Join(id) => {
                    server.register_station(id, 0, traffic.bits_per_value)?;
                    outcome.joins += 1;
                }
                ChurnEvent::Leave(id) => match server.deregister_station(id) {
                    // Already evicted by the idle policy — nothing to remove.
                    Ok(()) | Err(ServeError::UnknownStation(_)) => outcome.leaves += 1,
                    Err(e) => return Err(e),
                },
            }
        }
        for (id, frame) in &round.frames {
            let Some(frame) = frame else { continue };
            match server.ingest_wire(*id, frame) {
                Ok(_) => {}
                Err(ServeError::UnknownStation(_)) => {
                    server.register_station(*id, 0, traffic.bits_per_value)?;
                    server.ingest_wire(*id, frame)?;
                    outcome.reassociations += 1;
                }
                Err(e) => return Err(e),
            }
        }
        outcome.summaries.push(server.close_round(mode)?);
        outcome.evictions += server.evicted_in_last_round();
    }
    Ok(outcome)
}

/// Runs the end-to-end MU-MIMO link check over the served feedback: fresh
/// stations are partitioned into `Nt`-sized zero-forcing groups, each group's
/// reconstructed `V̂` drives the precoder, and the payload propagates through
/// the stations' *true* final-round channels.
///
/// `max_age` bounds how stale a station's feedback may be (in rounds) to join
/// a group. Returns the merged report across groups; groups of a single
/// station are skipped (no inter-user interference to measure).
///
/// # Errors
/// [`ServeError::Link`] when the precoder or link simulation rejects a group.
pub fn link_check(
    server: &ApServer,
    traffic: &SimTraffic,
    max_age: u64,
    snr_db: f64,
    rng: &mut impl Rng,
) -> Result<LinkReport, ServeError> {
    let link_cfg = LinkConfig {
        snr_db,
        ..LinkConfig::default()
    };
    let mut merged = LinkReport::empty();
    for group in server.mu_mimo_groups(max_age) {
        if group.len() < 2 {
            continue;
        }
        // Feedback can outlive the station's final reported channel only for
        // stations that reported at least once, so the CSI lookup is total.
        let feedback = server.group_feedback(&group)?;
        let per_user: Vec<Vec<mimo_math::CMatrix>> = group
            .iter()
            .map(|&id| traffic.final_csi[id as usize].clone())
            .collect();
        let snapshot = ChannelSnapshot::from_matrices(traffic.bandwidth, traffic.nss, per_user);
        let report = simulate_mu_mimo_ber(&snapshot, &feedback, &link_cfg, rng)
            .map_err(|e| ServeError::Link(e.to_string()))?;
        merged.merge(&report);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::ofdm::MimoConfig;

    fn trained_free_model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    #[test]
    fn traffic_has_expected_shape() {
        let model = trained_free_model(1);
        let cfg = SimConfig {
            stations: 3,
            rounds: 2,
            bits_per_value: 4,
            drop_every: 5,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        assert_eq!(traffic.rounds.len(), 2);
        assert_eq!(traffic.rounds[0].frames.len(), 3);
        assert!(traffic.rounds.iter().all(|r| r.events.is_empty()));
        // Event 5 (round 1, station 1) dropped out of 6.
        assert_eq!(traffic.total_frames(), 5);
        assert_eq!(traffic.total_drops(), 1);
        assert!(traffic.rounds[1].frames[1].1.is_none());
        let expected_frame_len = wire::encoded_len(model.bottleneck_dim(), 4);
        for round in &traffic.rounds {
            for (_, frame) in round.frames.iter() {
                if let Some(frame) = frame {
                    assert_eq!(frame.len(), expected_frame_len);
                }
            }
        }
        assert_eq!(traffic.total_wire_bytes(), 5 * expected_frame_len);
        assert_eq!(traffic.final_csi.len(), 3);
        assert_eq!(traffic.final_csi[0].len(), 56);
        assert_eq!(traffic.max_station_id, 3);
    }

    #[test]
    fn churn_schedules_joins_leaves_and_bursts() {
        let model = trained_free_model(2);
        let cfg = SimConfig {
            stations: 4,
            rounds: 6,
            bits_per_value: 4,
            drop_every: 0,
            churn: ChurnConfig {
                join_every: 2,
                leave_every: 3,
                burst_every: 3,
            },
            ..SimConfig::default()
        };
        assert!(cfg.churn.is_active());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        // Joins at rounds 2 and 4; leaves at rounds 3 and 6 (round 6 does not
        // exist, so only round 3).
        assert_eq!(traffic.total_joins(), 2);
        assert_eq!(traffic.total_leaves(), 1);
        assert_eq!(traffic.rounds[2].events, vec![ChurnEvent::Join(4)]);
        assert_eq!(traffic.rounds[3].events, vec![ChurnEvent::Leave(0)]);
        assert_eq!(traffic.rounds[4].events, vec![ChurnEvent::Join(5)]);
        // Bursty rounds (2 and 5) drop every other active station.
        assert!(traffic.total_drops() > 0);
        let burst_drops = traffic.rounds[2]
            .frames
            .iter()
            .filter(|(_, f)| f.is_none())
            .count();
        assert!(burst_drops >= 2, "burst round must drop several stations");
        // The joined station eventually transmits.
        assert!(traffic
            .rounds
            .iter()
            .any(|r| r.frames.iter().any(|(id, f)| *id == 4 && f.is_some())));
        assert_eq!(traffic.max_station_id, 6);
        assert_eq!(traffic.final_csi.len(), 6);
    }

    /// Satellite determinism test: the serving layer's batched reconstruction
    /// matches station-at-a-time reconstruction exactly, over multiple rounds
    /// with drops and churn.
    #[test]
    fn batched_serving_is_bit_exact_with_serial() {
        let model = trained_free_model(3);
        let cfg = SimConfig {
            stations: 6,
            rounds: 4,
            bits_per_value: 4,
            drop_every: 7,
            churn: ChurnConfig {
                join_every: 2,
                leave_every: 3,
                burst_every: 0,
            },
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        let mut batched = build_server(model.clone(), cfg.stations, cfg.bits_per_value);
        let mut serial = build_server(model, cfg.stations, cfg.bits_per_value);
        let b = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
        let s = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
        assert_eq!(b, s);
        assert_eq!(b.joins, traffic.total_joins());
        assert_eq!(b.leaves, traffic.total_leaves());
        for id in 0..traffic.max_station_id {
            assert_eq!(
                batched.feedback_of(id),
                serial.feedback_of(id),
                "station {id} batched vs serial"
            );
        }
    }

    #[test]
    fn sharded_serving_is_bit_exact_with_single_shard() {
        let model = trained_free_model(7);
        let cfg = SimConfig {
            stations: 6,
            rounds: 4,
            bits_per_value: 5,
            drop_every: 5,
            churn: ChurnConfig {
                join_every: 2,
                leave_every: 2,
                burst_every: 3,
            },
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        let mut single = build_server(model.clone(), cfg.stations, cfg.bits_per_value);
        let reference = serve_traffic(&mut single, &traffic, ServeMode::Batched).unwrap();
        for shards in [1usize, 2, 4, 7] {
            let mut sharded =
                build_sharded_server(model.clone(), cfg.stations, cfg.bits_per_value, shards);
            let outcome = serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
            assert_eq!(outcome.total_served(), reference.total_served());
            for (got, want) in outcome.summaries.iter().zip(reference.summaries.iter()) {
                assert_eq!(
                    (got.round, got.served, got.stale, got.awaiting_first_report),
                    (
                        want.round,
                        want.served,
                        want.stale,
                        want.awaiting_first_report
                    ),
                    "{shards} shards"
                );
            }
            for id in 0..traffic.max_station_id {
                assert_eq!(
                    sharded.feedback_of(id),
                    single.feedback_of(id),
                    "{shards} shards, station {id}"
                );
            }
        }
    }

    #[test]
    fn evicted_stations_reassociate_on_their_next_frame() {
        let model = trained_free_model(9);
        let cfg = SimConfig {
            stations: 4,
            rounds: 6,
            bits_per_value: 4,
            drop_every: 3, // frequent drops so some station goes idle
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        let mut server = build_sharded_server(model, cfg.stations, cfg.bits_per_value, 2);
        server.set_max_idle_rounds(Some(0)); // evict after any silent round
        let outcome = serve_traffic(&mut server, &traffic, ServeMode::Batched).unwrap();
        assert!(
            outcome.evictions > 0,
            "aggressive idle budget must evict somebody"
        );
        assert!(
            outcome.reassociations > 0,
            "aggressive eviction must force re-associations"
        );
        // Every station that transmitted in the final round is back in.
        for (id, frame) in traffic.rounds.last().unwrap().frames.iter() {
            if frame.is_some() {
                assert!(server.session(*id).is_some(), "station {id} reassociated");
            }
        }
    }

    #[test]
    fn link_check_runs_on_fresh_groups() {
        let model = trained_free_model(5);
        let cfg = SimConfig {
            stations: 4,
            rounds: 2,
            bits_per_value: 8,
            drop_every: 0,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let traffic = generate_traffic(&cfg, &model, &mut rng);
        let mut server = build_server(model, cfg.stations, cfg.bits_per_value);
        serve_traffic(&mut server, &traffic, ServeMode::Batched).unwrap();
        let report = link_check(&server, &traffic, 0, cfg.snr_db, &mut rng).unwrap();
        // Two groups of two stations, every station carries payload bits.
        assert_eq!(report.per_user_bits.len(), 2);
        assert!(report.per_user_bits.iter().all(|&b| b > 0));
        assert!(report.ber().is_finite());
    }
}
