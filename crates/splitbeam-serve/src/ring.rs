//! Bounded lock-free MPMC ring buffer for streaming frame hand-off.
//!
//! This is the per-shard ingest ring behind streaming micro-batch serving: the
//! ingest side pushes decoded frames as they arrive, the shard's watermark
//! close pops them in FIFO order. The design is the classic bounded MPMC queue
//! with per-slot sequence counters (Vyukov): each slot carries an atomic
//! sequence number that encodes both its occupancy and the "lap" of the ring
//! it belongs to, so producers and consumers coordinate without locks and
//! without a shared generation counter.
//!
//! Invariants (exercised by the seeded-interleaving tests below):
//!
//! * **Bounded**: `push` never blocks and never allocates; a full ring hands
//!   the value back as `Err`, which the serving layer surfaces as
//!   [`crate::ServeError::Backpressure`] instead of silently dropping.
//! * **Exactly-once**: every pushed value is popped exactly once.
//! * **Per-producer FIFO**: values from one producer are popped in push order
//!   (single-consumer drains additionally see global FIFO order across the
//!   points of `push` linearization).

// The concurrency primitives come through the `loom` facade: plain std in
// normal builds, and an exhaustively explored model under
// `RUSTFLAGS="--cfg splitbeam_model"` (see `splitbeam-analysis`'s
// `ring_model` suite). The closure-based `UnsafeCell` API exists so the
// model can race-check every cell access.
use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use std::mem::MaybeUninit;

/// Ordering of the producer's slot-publish store. The model build routes
/// this through [`model_hooks`] so the negative test can weaken it and
/// prove the checker notices; release is load-bearing — it publishes the
/// cell write to the consumer's acquire load of `seq`.
#[cfg(not(splitbeam_model))]
#[inline(always)]
fn publish_ordering() -> Ordering {
    Ordering::Release
}

/// Ordering of the consumer's slot-release store (hands the emptied slot to
/// the next lap's producer). Same hook arrangement as [`publish_ordering`].
#[cfg(not(splitbeam_model))]
#[inline(always)]
fn release_ordering() -> Ordering {
    Ordering::Release
}

#[cfg(splitbeam_model)]
use model_hooks::{publish_ordering, release_ordering};

/// Mutation hooks for the model checker's negative tests: downgrading
/// either Release store to Relaxed must be caught as a data race by the
/// exhaustive exploration. Only exists under `--cfg splitbeam_model`; the
/// normal build compiles the orderings as constants.
#[cfg(splitbeam_model)]
pub mod model_hooks {
    use std::sync::atomic::AtomicBool;
    use std::sync::atomic::Ordering as StdOrdering;

    use super::Ordering;

    static WEAKEN_PUBLISH: AtomicBool = AtomicBool::new(false);
    static WEAKEN_RELEASE: AtomicBool = AtomicBool::new(false);

    /// Downgrade the producer's slot-publish store to Relaxed (seeded bug).
    pub fn set_weaken_publish(on: bool) {
        WEAKEN_PUBLISH.store(on, StdOrdering::SeqCst);
    }

    /// Downgrade the consumer's slot-release store to Relaxed (seeded bug).
    pub fn set_weaken_release(on: bool) {
        WEAKEN_RELEASE.store(on, StdOrdering::SeqCst);
    }

    pub(super) fn publish_ordering() -> Ordering {
        if WEAKEN_PUBLISH.load(StdOrdering::SeqCst) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        }
    }

    pub(super) fn release_ordering() -> Ordering {
        if WEAKEN_RELEASE.load(StdOrdering::SeqCst) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        }
    }
}

/// One ring slot: the atomic sequence number plus the (possibly
/// uninitialized) value cell it guards.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer multi-consumer ring.
///
/// Capacity is rounded up to the next power of two (minimum 2) so the
/// position-to-slot mapping is a mask instead of a modulo.
pub struct Ring<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: the per-slot sequence protocol guarantees a value is only read by
// the one consumer that claimed the slot and only written by the one producer
// that claimed it, so sending values across threads is sound whenever the
// values themselves are sendable.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: same protocol as above — every shared-slot access through `&Ring`
// is mediated by the sequence counters, so shared references may cross
// threads too.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Creates a ring holding at least `capacity` elements (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            buf,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Snapshot of the number of queued elements. Exact when quiescent,
    /// approximate while producers/consumers are live.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no elements (see [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue `value`; returns it back when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            // seq == tail: slot free for this lap. seq < tail: the consumer
            // of the previous lap hasn't released it — ring is full.
            match seq.wrapping_sub(tail) as isize {
                0 => {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gave this producer exclusive
                            // ownership of the slot until the seq store below.
                            slot.value.with_mut(|p| unsafe { (*p).write(value) });
                            slot.seq.store(tail.wrapping_add(1), publish_ordering());
                            return Ok(());
                        }
                        Err(current) => tail = current,
                    }
                }
                diff if diff < 0 => return Err(value),
                _ => tail = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Attempts to dequeue the oldest element.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            // seq == head + 1: slot filled for this lap. seq <= head: the
            // producer hasn't published it yet — ring is empty at this head.
            match seq.wrapping_sub(head.wrapping_add(1)) as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gave this consumer exclusive
                            // ownership of the filled slot, and the acquire
                            // load of `seq` above ordered the producer's
                            // write before this read.
                            let value = slot.value.with(|p| unsafe { (*p).assume_init_read() });
                            slot.seq.store(
                                head.wrapping_add(self.mask).wrapping_add(1),
                                release_ordering(),
                            );
                            return Some(value);
                        }
                        Err(current) => head = current,
                    }
                }
                diff if diff < 0 => return None,
                _ => head = self.head.load(Ordering::Relaxed),
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain any queued values so their destructors run.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::VecDeque;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::<u32>::with_capacity(0).capacity(), 2);
        assert_eq!(Ring::<u32>::with_capacity(1).capacity(), 2);
        assert_eq!(Ring::<u32>::with_capacity(5).capacity(), 8);
        assert_eq!(Ring::<u32>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn push_pop_fifo_and_full_empty_edges() {
        let ring = Ring::with_capacity(4);
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
        for i in 0..4 {
            ring.push(i).expect("room");
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        // Wrap around a few laps.
        for lap in 0..10 {
            ring.push(lap).expect("room after drain");
            assert_eq!(ring.pop(), Some(lap));
        }
    }

    /// Seeded single-threaded model check: the ring must agree with a
    /// `VecDeque` under an arbitrary interleaving of pushes and pops,
    /// including full/empty boundary behaviour.
    #[test]
    fn seeded_model_check_against_vecdeque() {
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0000 + seed);
            let ring = Ring::with_capacity(8);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut next = 0u64;
            for _ in 0..4000 {
                if rng.gen_bool(0.55) {
                    match ring.push(next) {
                        Ok(()) => {
                            model.push_back(next);
                            assert!(model.len() <= ring.capacity());
                        }
                        Err(v) => {
                            assert_eq!(v, next);
                            assert_eq!(
                                model.len(),
                                ring.capacity(),
                                "push failed but model not full"
                            );
                        }
                    }
                    next += 1;
                } else {
                    assert_eq!(ring.pop(), model.pop_front());
                }
                assert_eq!(ring.len(), model.len());
            }
        }
    }

    #[test]
    fn drop_runs_destructors_of_queued_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let ring = Ring::with_capacity(8);
            for _ in 0..5 {
                ring.push(Counted).ok().expect("room");
            }
            drop(ring.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    /// Seeded-interleaving concurrency check (the shim-equivalent of a loom
    /// test): several producers race a consumer through the shimmed rayon
    /// `scope`, with per-thread seeded yield patterns perturbing the
    /// interleaving. Every value must arrive exactly once and values from one
    /// producer must stay in that producer's push order.
    #[test]
    fn multi_producer_exactly_once_and_per_producer_fifo() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        for seed in 0..3u64 {
            let ring = Ring::with_capacity(16);
            let mut received: Vec<u64> = Vec::with_capacity((PRODUCERS * PER_PRODUCER) as usize);
            rayon::scope(|s| {
                for p in 0..PRODUCERS {
                    let ring = &ring;
                    s.spawn(move |_| {
                        let mut rng = ChaCha8Rng::seed_from_u64(seed * 31 + p);
                        for i in 0..PER_PRODUCER {
                            let mut value = p << 32 | i;
                            loop {
                                match ring.push(value) {
                                    Ok(()) => break,
                                    Err(back) => value = back,
                                }
                                std::thread::yield_now();
                            }
                            if rng.gen_bool(0.3) {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
                // Single consumer drains concurrently with the producers.
                let want = (PRODUCERS * PER_PRODUCER) as usize;
                while received.len() < want {
                    match ring.pop() {
                        Some(v) => received.push(v),
                        None => std::thread::yield_now(),
                    }
                }
            });
            assert!(ring.is_empty());
            // Exactly-once: every (producer, index) pair appears once.
            let mut sorted = received.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), received.len(), "duplicate delivery");
            assert_eq!(received.len(), (PRODUCERS * PER_PRODUCER) as usize);
            // Per-producer FIFO: indices within one producer arrive ordered.
            for p in 0..PRODUCERS {
                let idxs: Vec<u64> = received
                    .iter()
                    .filter(|v| *v >> 32 == p)
                    .map(|v| *v & 0xffff_ffff)
                    .collect();
                assert!(
                    idxs.windows(2).all(|w| w[0] < w[1]),
                    "producer {p} reordered"
                );
            }
        }
    }
}
