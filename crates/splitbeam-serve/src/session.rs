//! Per-station serving state.

use crate::server::HealthPolicy;
use crate::timing::FrameStamp;
use splitbeam::quantization::QuantizedFeedback;

/// Over-the-air station identifier (association id in a real AP).
pub type StationId = u64;

/// Per-session link-health state, driven by ingest outcomes and round closes.
///
/// The AP degrades gracefully instead of failing hard: a station whose reports
/// keep missing their round is **Degraded** (served from last-known-good
/// feedback up to the staleness cap), and a station whose frames keep arriving
/// corrupt is **Quarantined** (its traffic rejected for a fixed number of
/// rounds, and it is excluded from MU-MIMO grouping until it recovers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionHealth {
    /// Reports are arriving and decoding normally.
    #[default]
    Healthy,
    /// Recent rounds closed without a usable report from this station; the AP
    /// serves last-known-good feedback while the staleness cap allows.
    Degraded,
    /// Repeated corrupt frames: traffic is rejected until the quarantine
    /// expires, and the station does not join precoding groups.
    Quarantined,
}

/// The AP's per-station serving state: which model reconstructs this station's
/// payloads, how wide its quantizer is, and the freshest reconstructed `V̂`.
///
/// The feedback is kept in the tail's flat real-interleaved layout; per-round
/// serving never materializes `CMatrix` objects — that happens lazily, only
/// for stations entering a precoding group
/// (see [`crate::server::ApServer::group_feedback`]).
#[derive(Debug, Clone)]
pub struct StationSession {
    id: StationId,
    model_key: usize,
    bits_per_value: u8,
    /// Round the station (re-)associated in — the baseline for idle-eviction
    /// of stations that never report.
    joined_round: u64,
    /// The payload slot for the current round. The buffer persists across
    /// rounds (decode-into reuses its `codes` storage); `has_pending` says
    /// whether it holds a payload for the round being collected.
    payload: QuantizedFeedback,
    has_pending: bool,
    /// Virtual-time stamp of the pending payload (all-zero for untimed
    /// lockstep ingest).
    pending_stamp: FrameStamp,
    last_feedback: Option<Vec<f32>>,
    last_round: Option<u64>,
    /// Stamp of the report behind `last_feedback`, if it came through the
    /// timestamped ingest path.
    last_stamp: Option<FrameStamp>,
    /// Whether the stored feedback was classified late-but-usable (past the
    /// Eq. 7d budget but within the grace window) at its round close.
    last_served_late: bool,
    payloads_ingested: u64,
    wire_bytes_ingested: u64,
    /// Sequence number of the pending payload (`0` = unsequenced/last-wins).
    pending_seq: u16,
    /// Frames from this station accepted by streaming ingest but still queued
    /// in the shard's ring (not yet committed to the payload slot). Keeps the
    /// duplicate-suppression window identical between barrier and streaming
    /// ingest while frames are in flight.
    stream_inflight: u32,
    /// Consecutive closed rounds without a usable report from this station.
    miss_streak: u32,
    /// Consecutive corrupt frames received from this station.
    corrupt_streak: u32,
    /// While `Some(r)`, traffic is rejected for every round `< r`.
    quarantined_until_round: Option<u64>,
    health: SessionHealth,
}

impl StationSession {
    pub(crate) fn new(
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
        joined_round: u64,
    ) -> Self {
        Self {
            id,
            model_key,
            bits_per_value,
            joined_round,
            payload: QuantizedFeedback {
                bits_per_value,
                min: 0.0,
                max: 0.0,
                codes: Vec::new(),
            },
            has_pending: false,
            pending_stamp: FrameStamp::default(),
            last_feedback: None,
            last_round: None,
            last_stamp: None,
            last_served_late: false,
            payloads_ingested: 0,
            wire_bytes_ingested: 0,
            pending_seq: 0,
            stream_inflight: 0,
            miss_streak: 0,
            corrupt_streak: 0,
            quarantined_until_round: None,
            health: SessionHealth::Healthy,
        }
    }

    /// A synthetic fresh session, public for store-level benchmarks and
    /// tests; production sessions are created by server registration.
    #[doc(hidden)]
    pub fn synthetic(
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
        joined_round: u64,
    ) -> Self {
        Self::new(id, model_key, bits_per_value, joined_round)
    }

    /// Rebinds the session to `model_key` on the adopting server during a
    /// fleet handoff. Only the binding key changes: payloads, feedback,
    /// health state and staleness clocks all travel untouched, which is what
    /// makes a roamed station bit-exact with a never-roamed control when the
    /// model weights behind the two keys are identical.
    pub(crate) fn rebind_model(&mut self, model_key: usize) {
        self.model_key = model_key;
    }

    /// Whether this station delivered a payload for the round being collected.
    pub fn has_pending(&self) -> bool {
        self.has_pending
    }

    /// The pending payload (meaningful only while [`StationSession::has_pending`]).
    pub(crate) fn payload(&self) -> &QuantizedFeedback {
        &self.payload
    }

    /// Mutable access to the payload slot, for buffer-recycling ingest.
    pub(crate) fn payload_slot(&mut self) -> &mut QuantizedFeedback {
        &mut self.payload
    }

    pub(crate) fn set_pending(&mut self, pending: bool) {
        self.has_pending = pending;
    }

    /// The virtual-time stamp of the pending payload (all-zero when the
    /// payload came through the untimed lockstep ingest path).
    pub fn pending_stamp(&self) -> &FrameStamp {
        &self.pending_stamp
    }

    pub(crate) fn set_pending_stamp(&mut self, stamp: FrameStamp) {
        self.pending_stamp = stamp;
    }

    /// The station id.
    pub fn id(&self) -> StationId {
        self.id
    }

    /// Key of the model serving this station.
    pub fn model_key(&self) -> usize {
        self.model_key
    }

    /// Quantizer width this station announced at association.
    pub fn bits_per_value(&self) -> u8 {
        self.bits_per_value
    }

    /// Round the station (re-)associated in.
    pub fn joined_round(&self) -> u64 {
        self.joined_round
    }

    /// Sounding rounds since the station last produced feedback, measured at
    /// the just-closed round `closed_round`; stations that never reported are
    /// measured from their association round instead. `0` means the station
    /// was served this very round (or associated during it).
    pub fn idle_rounds(&self, closed_round: u64) -> u64 {
        closed_round.saturating_sub(self.last_round.unwrap_or(self.joined_round))
    }

    /// The most recently reconstructed feedback in the tail's flat
    /// real-interleaved layout (length `2 * Nt * Nss * S`).
    pub fn feedback(&self) -> Option<&[f32]> {
        self.last_feedback.as_deref()
    }

    /// Round the feedback was reconstructed in, if any.
    pub fn last_round(&self) -> Option<u64> {
        self.last_round
    }

    /// Feedback age in sounding rounds at `current_round` (0 = reconstructed
    /// this very round). `None` when the station never reported.
    pub fn age(&self, current_round: u64) -> Option<u64> {
        self.last_round.map(|r| current_round.saturating_sub(r))
    }

    /// Whether the feedback is at most `max_age` rounds old at `current_round`.
    pub fn is_fresh(&self, current_round: u64, max_age: u64) -> bool {
        self.age(current_round).is_some_and(|a| a <= max_age)
    }

    /// Number of payloads this station has delivered.
    pub fn payloads_ingested(&self) -> u64 {
        self.payloads_ingested
    }

    /// Total wire bytes this station has delivered.
    pub fn wire_bytes_ingested(&self) -> u64 {
        self.wire_bytes_ingested
    }

    pub(crate) fn record_ingest(&mut self, wire_bytes: usize) {
        self.payloads_ingested += 1;
        self.wire_bytes_ingested += wire_bytes as u64;
    }

    /// Virtual-time stamp of the stored feedback (`None` when the station has
    /// no feedback or it came through the untimed lockstep path).
    pub fn last_stamp(&self) -> Option<&FrameStamp> {
        self.last_stamp.as_ref()
    }

    /// Whether the stored feedback was classified late-but-usable at its
    /// round close (past the Eq. 7d budget but within the grace window).
    /// Always `false` for on-time reports and for untimed lockstep serving.
    pub fn served_late(&self) -> bool {
        self.last_served_late
    }

    /// Stores a reconstruction, reusing the previous round's buffer when one
    /// exists (steady-state serving allocates nothing per station).
    pub(crate) fn store_feedback(&mut self, flat: &[f32], round: u64) {
        match &mut self.last_feedback {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(flat);
            }
            None => self.last_feedback = Some(flat.to_vec()),
        }
        self.last_round = Some(round);
    }

    /// Records how the deadline-aware closer classified the report that was
    /// just stored: its stamp (when timestamped) and whether it was late.
    pub(crate) fn record_service_class(&mut self, stamp: Option<FrameStamp>, late: bool) {
        self.last_stamp = stamp;
        self.last_served_late = late;
    }

    /// Sequence number of the pending payload (`0` = unsequenced: a later
    /// frame simply replaces the pending one, the pre-sequencing behaviour).
    pub fn pending_seq(&self) -> u16 {
        self.pending_seq
    }

    pub(crate) fn set_pending_seq(&mut self, seq: u16) {
        self.pending_seq = seq;
    }

    /// Frames accepted by streaming ingest but still queued in the shard's
    /// ring, awaiting their watermark commit.
    pub fn stream_inflight(&self) -> u32 {
        self.stream_inflight
    }

    pub(crate) fn inc_stream_inflight(&mut self) {
        self.stream_inflight = self.stream_inflight.saturating_add(1);
    }

    pub(crate) fn dec_stream_inflight(&mut self) {
        self.stream_inflight = self.stream_inflight.saturating_sub(1);
    }

    /// Current link-health state of this session.
    pub fn health(&self) -> SessionHealth {
        self.health
    }

    /// Round the quarantine expires at (`None` when not quarantined).
    pub fn quarantined_until(&self) -> Option<u64> {
        self.quarantined_until_round
    }

    /// Whether ingest must be rejected for `round`.
    pub(crate) fn is_quarantined(&self, round: u64) -> bool {
        self.quarantined_until_round
            .is_some_and(|until| round < until)
    }

    /// Consecutive closed rounds without a usable report.
    pub fn miss_streak(&self) -> u32 {
        self.miss_streak
    }

    /// Consecutive corrupt frames received.
    pub fn corrupt_streak(&self) -> u32 {
        self.corrupt_streak
    }

    /// Records one corrupt frame at ingest time. Returns `true` when the
    /// corrupt streak just crossed the policy's quarantine threshold and the
    /// station entered quarantine (until `round + quarantine_rounds`).
    pub(crate) fn note_corrupt(&mut self, round: u64, policy: &HealthPolicy) -> bool {
        self.corrupt_streak += 1;
        if policy.quarantine_after_corrupt != 0
            && self.corrupt_streak >= policy.quarantine_after_corrupt
            && self.quarantined_until_round.is_none()
        {
            self.quarantined_until_round = Some(round + policy.quarantine_rounds.max(1));
            self.health = SessionHealth::Quarantined;
            self.corrupt_streak = 0;
            return true;
        }
        false
    }

    /// Records one cleanly decoded frame: the corrupt streak resets.
    pub(crate) fn note_clean_ingest(&mut self) {
        self.corrupt_streak = 0;
    }

    /// Advances the health state machine at the close of `closed_round`.
    /// `reported` is whether the station contributed a usable report this
    /// round (served fresh, not stale/expired).
    pub(crate) fn close_health(
        &mut self,
        closed_round: u64,
        policy: &HealthPolicy,
        reported: bool,
    ) {
        if reported {
            self.miss_streak = 0;
        } else {
            self.miss_streak = self.miss_streak.saturating_add(1);
        }
        if let Some(until) = self.quarantined_until_round {
            if closed_round + 1 < until {
                // Still serving the quarantine through the next round.
                self.health = SessionHealth::Quarantined;
                return;
            }
            self.quarantined_until_round = None;
        }
        self.health = if policy.degrade_after_misses != 0
            && self.miss_streak >= policy.degrade_after_misses
        {
            SessionHealth::Degraded
        } else {
            SessionHealth::Healthy
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_and_freshness() {
        let mut s = StationSession::new(9, 0, 8, 0);
        assert_eq!(s.age(5), None);
        assert!(!s.is_fresh(5, 100));
        s.store_feedback(&[], 3);
        assert_eq!(s.age(3), Some(0));
        assert_eq!(s.age(7), Some(4));
        assert!(s.is_fresh(4, 1));
        assert!(!s.is_fresh(7, 3));
        assert_eq!(s.last_round(), Some(3));
    }

    #[test]
    fn ingest_accounting() {
        let mut s = StationSession::new(1, 2, 4, 0);
        assert_eq!((s.id(), s.model_key(), s.bits_per_value()), (1, 2, 4));
        s.record_ingest(68);
        s.record_ingest(68);
        assert_eq!(s.payloads_ingested(), 2);
        assert_eq!(s.wire_bytes_ingested(), 136);
        assert!(s.feedback().is_none());
    }

    #[test]
    fn health_machine_degrades_and_quarantines() {
        let policy = HealthPolicy::default();
        let mut s = StationSession::new(7, 0, 4, 0);
        assert_eq!(s.health(), SessionHealth::Healthy);
        // One silent round is tolerated, two degrade.
        s.close_health(0, &policy, false);
        assert_eq!(s.health(), SessionHealth::Healthy);
        s.close_health(1, &policy, false);
        assert_eq!(s.health(), SessionHealth::Degraded);
        assert_eq!(s.miss_streak(), 2);
        // A good round recovers immediately.
        s.close_health(2, &policy, true);
        assert_eq!(s.health(), SessionHealth::Healthy);
        // Corrupt frames quarantine once the streak crosses the threshold.
        assert!(!s.note_corrupt(3, &policy));
        assert!(!s.note_corrupt(3, &policy));
        assert!(s.note_corrupt(3, &policy));
        assert_eq!(s.health(), SessionHealth::Quarantined);
        assert_eq!(s.quarantined_until(), Some(3 + policy.quarantine_rounds));
        assert!(s.is_quarantined(3));
        assert!(s.is_quarantined(3 + policy.quarantine_rounds - 1));
        assert!(!s.is_quarantined(3 + policy.quarantine_rounds));
        // Health stays quarantined through closes until the expiry round...
        s.close_health(3, &policy, false);
        assert_eq!(s.health(), SessionHealth::Quarantined);
        // ...then falls back to degraded (the misses kept accumulating).
        s.close_health(3 + policy.quarantine_rounds - 1, &policy, false);
        assert_eq!(s.health(), SessionHealth::Degraded);
        // A clean ingest resets the corrupt streak.
        assert!(!s.note_corrupt(20, &policy));
        s.note_clean_ingest();
        assert_eq!(s.corrupt_streak(), 0);
    }

    #[test]
    fn idle_rounds_measured_from_join_then_last_report() {
        let mut s = StationSession::new(3, 0, 8, 5);
        assert_eq!(s.joined_round(), 5);
        // Never reported: idle counts from the association round.
        assert_eq!(s.idle_rounds(5), 0);
        assert_eq!(s.idle_rounds(8), 3);
        // After a report, idle counts from the last served round.
        s.store_feedback(&[], 9);
        assert_eq!(s.idle_rounds(9), 0);
        assert_eq!(s.idle_rounds(12), 3);
    }
}
