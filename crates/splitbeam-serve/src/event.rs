//! The virtual-time, event-driven serving driver.
//!
//! [`EventDriver`] wraps any [`RoundServing`] server and replaces the
//! lockstep "all feedback lands simultaneously" fiction with a discrete-event
//! simulation on a virtual clock (integer nanoseconds, no wall clock):
//!
//! 1. each station sounds on its own cadence and phase within the round,
//! 2. its head compute time (drawn from the
//!    [`AcceleratorModel`](splitbeam_hwsim::accelerator::AcceleratorModel))
//!    plus seeded jitter delays the report,
//! 3. the report is offered to the **shared medium** through a binary-heap
//!    event queue with deterministic `(offer time, station, seq)`
//!    tie-breaking — frames serialize one at a time in physical ready order,
//!    each charged through the same per-frame airtime primitive the
//!    round-level airtime model sums, on its **actual encoded wire size**
//!    (header included) — so a crowded round *queues*,
//! 4. each granted frame is ingested into the inner server **timestamped**
//!    with its full head/queue/air/tail breakdown,
//! 5. the round close enforces the Eq. 7d deadline: the inner server's
//!    deadline-aware closer classifies every report on-time / late-but-usable
//!    / past-budget from its stamp.
//!
//! The lockstep drivers are recovered as the degenerate case: with zero
//! jitter, zero compute latency, an ideal medium and zero phase stagger
//! ([`EventConfig::lockstep`]), every stamp is all-zero, every report is
//! on-time, and the driver is **bit-exact** with `ApServer` /
//! `ShardedApServer` serving — the refactor's correctness anchor.

use crate::driver::{RoundServing, ServeMode, StreamServing};
use crate::server::{ApServer, RoundSummary};
use crate::session::StationId;
use crate::shard::ShardedApServer;
use crate::timing::{DeadlinePolicy, FrameStamp};
use crate::ServeError;
use splitbeam::model::SplitBeamModel;
use splitbeam::wire;
use splitbeam_hwsim::accelerator::AcceleratorModel;
use splitbeam_hwsim::delay::DelayBudget;
use splitbeam_hwsim::event::{
    s_to_ns, EventQueue, SeededJitter, SharedMedium, VirtualNs, WatermarkClock,
};
use splitbeam_hwsim::fault::{FaultConfig, FaultInjector, FaultStats, FrameFate};
use std::collections::BTreeMap;

/// Shape of one event-driven serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Base sounding interval (round cadence), in seconds. 10 ms per the
    /// MU-MIMO sounding reference the paper cites.
    pub interval_s: f64,
    /// The Eq. 7d end-to-end delay budget enforced at round close.
    pub budget: DelayBudget,
    /// Grace window past the budget in which a report is still
    /// late-but-usable (reconstructed, but flagged). Beyond it the report is
    /// past-budget and dropped.
    pub grace_s: f64,
    /// Maximum per-report timing jitter, in virtual ns (seeded, uniform in
    /// `[0, max]`). Zero disables jitter.
    pub jitter_max_ns: VirtualNs,
    /// Seed of the jitter stream — two runs with the same seed and traffic
    /// are identical, event for event.
    pub seed: u64,
    /// Per-station sounding phase stagger within a round: station `id` sounds
    /// at `round_start + id * phase_step_ns`. Zero means all stations sound
    /// together (the lockstep assumption).
    pub phase_step_ns: VirtualNs,
    /// Feedback data rate of the shared medium in Mbit/s; `None` models an
    /// ideal zero-airtime medium (the lockstep degenerate case).
    pub feedback_rate_mbps: Option<f64>,
    /// Fault model of the medium (loss, corruption, duplication, extra
    /// delay). [`FaultConfig::none`] — the default — draws nothing from the
    /// fault RNG, keeping zero-fault runs bit-exact with the PR 5 drivers.
    pub faults: FaultConfig,
    /// Maximum station retransmissions per report after a loss or corruption
    /// (`0` disables retransmission).
    pub max_retries: u32,
    /// Base retransmission backoff in virtual ns; attempt `n` backs off
    /// `backoff << (n - 1)` after the failed transmission ends. A retry that
    /// cannot land within the Eq. 7d budget plus grace is not attempted.
    pub retry_backoff_ns: VirtualNs,
    /// Serve through streaming micro-batch closes instead of the round
    /// barrier: arrivals enqueue on the inner server's per-shard rings, the
    /// drain fires deadline watermarks, and the round close only flushes what
    /// the watermarks have not already served. Equivalent to closing every
    /// round with [`ServeMode::Streaming`].
    pub streaming: bool,
    /// Watermark cadence in virtual ns for streaming closes; `0` means one
    /// watermark per sounding interval (the coarsest — and degenerate —
    /// cadence).
    pub watermark_ns: VirtualNs,
}

impl EventConfig {
    /// The degenerate lockstep configuration: zero jitter, zero phase
    /// stagger, ideal medium. Paired with zero compute latency
    /// (`accel = None` in [`build_event_driver`]), the event driver
    /// reproduces the legacy lockstep drivers bit-exactly.
    pub fn lockstep() -> Self {
        Self {
            interval_s: 0.01,
            budget: DelayBudget::default(),
            grace_s: 0.01,
            jitter_max_ns: 0,
            seed: 0,
            phase_step_ns: 0,
            feedback_rate_mbps: None,
            faults: FaultConfig::none(),
            max_retries: 0,
            retry_backoff_ns: 0,
            streaming: false,
            watermark_ns: 0,
        }
    }

    /// A physically-modeled run: medium rate `rate_mbps`, jitter amplitude
    /// from the `SPLITBEAM_JITTER_NS` environment variable (default
    /// `default_jitter_ns`), seeded with `seed`.
    pub fn realistic(rate_mbps: f64, default_jitter_ns: VirtualNs, seed: u64) -> Self {
        let jitter = SeededJitter::from_env(default_jitter_ns, seed);
        Self {
            interval_s: 0.01,
            budget: DelayBudget::default(),
            grace_s: 0.01,
            jitter_max_ns: jitter.max_ns(),
            seed,
            phase_step_ns: 0,
            feedback_rate_mbps: Some(rate_mbps),
            faults: FaultConfig::from_env(),
            max_retries: 2,
            retry_backoff_ns: 100_000,
            streaming: streaming_from_env(),
            watermark_ns: watermark_ns_from_env(),
        }
    }

    /// The deadline policy this configuration enforces at round close.
    pub fn policy(&self) -> DeadlinePolicy {
        DeadlinePolicy::new(&self.budget, self.grace_s)
    }

    fn interval_ns(&self) -> VirtualNs {
        s_to_ns(self.interval_s)
    }

    /// Effective watermark cadence: the configured `watermark_ns`, or one
    /// watermark per sounding interval when unset.
    fn watermark_step_ns(&self) -> VirtualNs {
        if self.watermark_ns > 0 {
            self.watermark_ns
        } else {
            self.interval_ns()
        }
    }

    fn medium(&self) -> SharedMedium {
        match self.feedback_rate_mbps {
            Some(rate) => SharedMedium::new(rate),
            None => SharedMedium::ideal(),
        }
    }
}

impl Default for EventConfig {
    fn default() -> Self {
        Self::lockstep()
    }
}

/// `SPLITBEAM_STREAMING` truthiness: `1` or `true` (case-insensitive) enables
/// streaming micro-batch serving in [`EventConfig::realistic`].
fn streaming_from_env() -> bool {
    mimo_math::env::flag("SPLITBEAM_STREAMING")
}

/// `SPLITBEAM_WATERMARK_NS`: watermark cadence in virtual ns (`0`/unset means
/// one watermark per sounding interval).
fn watermark_ns_from_env() -> VirtualNs {
    mimo_math::env::parse_or("SPLITBEAM_WATERMARK_NS", 0)
}

/// Head/tail compute latency of one model on the simulated accelerator, in
/// virtual ns.
#[derive(Debug, Clone, Copy, Default)]
struct ModelLatencyNs {
    head_ns: u64,
    tail_ns: u64,
}

/// Per-station event-driving state (model binding and sounding cadence).
#[derive(Debug, Clone, Copy)]
struct StationProfile {
    model_key: usize,
    /// The station sounds every `cadence`-th round (1 = every round). Its
    /// round-`r` report carries CSI sounded at the most recent multiple of
    /// `cadence`, so slow-cadence stations age accordingly.
    cadence: u64,
}

/// A report waiting in the event queue for its medium grant: the wire frame
/// plus the timing legs known at schedule time. The queue is keyed by the
/// report's *offer* time (when it is ready and polled), so frames contend for
/// the medium in physical ready order regardless of ingest order.
#[derive(Debug, Clone)]
struct PendingOffer {
    frame: Vec<u8>,
    /// When the report left head compute (offer minus any poll wait).
    ready_ns: VirtualNs,
    head_ns: u64,
    tail_ns: u64,
    /// Transmission attempt: `0` for the first transmission, `n` for the
    /// `n`-th retransmission after a loss or corruption.
    attempt: u32,
}

/// Discrete-event virtual-clock driver around any [`RoundServing`] server.
/// Implements [`RoundServing`] itself, so [`crate::driver::serve_traffic`]
/// can replay identical traffic through it and cross-compare against the
/// lockstep drivers.
#[derive(Debug, Clone)]
pub struct EventDriver<S> {
    inner: S,
    cfg: EventConfig,
    medium: SharedMedium,
    jitter: SeededJitter,
    queue: EventQueue<PendingOffer>,
    latencies: Vec<ModelLatencyNs>,
    profiles: BTreeMap<StationId, StationProfile>,
    round: u64,
    now_ns: VirtualNs,
    frames_scheduled: u64,
    /// Deterministic medium fault injector (seeded off [`EventConfig::seed`]
    /// on an independent stream from the jitter). A zero-fault config draws
    /// nothing, so fault-free runs replay PR 5 behaviour bit-exactly.
    injector: FaultInjector,
    /// Frames the injector dropped during the most recent drain.
    round_lost: usize,
    /// Retransmissions scheduled during the most recent drain.
    round_retransmitted: usize,
    /// Stamps of every report delivered by the most recent round close —
    /// including reports the deadline closer then expired — for
    /// delay-distribution observers (percentiles must not censor the tail).
    last_round_stamps: Vec<(StationId, FrameStamp)>,
}

impl<S: StreamServing> EventDriver<S> {
    /// Wraps `inner` in a virtual-time event simulation. With
    /// [`EventConfig::streaming`] set, the inner server is switched to
    /// streaming ingest immediately.
    pub fn over(mut inner: S, cfg: EventConfig) -> Self {
        if cfg.streaming {
            inner.set_streaming(true);
        }
        Self {
            inner,
            medium: cfg.medium(),
            jitter: SeededJitter::new(cfg.jitter_max_ns, cfg.seed),
            queue: EventQueue::new(),
            latencies: Vec::new(),
            profiles: BTreeMap::new(),
            round: 0,
            now_ns: 0,
            frames_scheduled: 0,
            injector: FaultInjector::new(cfg.faults, cfg.seed ^ 0xfa17_1e55_0b5e_55ed),
            round_lost: 0,
            round_retransmitted: 0,
            last_round_stamps: Vec::new(),
            cfg,
        }
    }

    /// Binds the head/tail compute latency of model `key` (drawn from an
    /// [`AcceleratorModel`] by the builders). Unbound models run with zero
    /// compute latency.
    pub fn bind_model_latency(&mut self, key: usize, head_s: f64, tail_s: f64) {
        if self.latencies.len() <= key {
            self.latencies.resize(key + 1, ModelLatencyNs::default());
        }
        self.latencies[key] = ModelLatencyNs {
            head_ns: s_to_ns(head_s),
            tail_ns: s_to_ns(tail_s),
        };
    }

    /// Sets station `id`'s sounding cadence: it sounds every `every_rounds`-th
    /// round (clamped to at least 1), so its round-`r` report is *timed* from
    /// the most recent cadence boundary and ages toward the deadline
    /// accordingly.
    ///
    /// This is a **timing** model: the payload bytes still come from the
    /// traffic's round-`r` frame (the driver replays pre-generated traffic
    /// verbatim), so the reconstructed feedback content is not itself aged —
    /// only its deadline classification and delay accounting are. Content
    /// aging would have to happen in the traffic generator.
    pub fn set_cadence(&mut self, id: StationId, every_rounds: u64) {
        if let Some(profile) = self.profiles.get_mut(&id) {
            profile.cadence = every_rounds.max(1);
        }
    }

    /// The wrapped server.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped server.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The driver configuration.
    pub fn config(&self) -> &EventConfig {
        &self.cfg
    }

    /// The shared-medium model (airtime, queueing and utilization counters).
    pub fn medium(&self) -> &SharedMedium {
        &self.medium
    }

    /// Current virtual time.
    pub fn virtual_now_ns(&self) -> VirtualNs {
        self.now_ns
    }

    /// Index of the round currently being collected.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Arrivals scheduled so far across the run.
    pub fn frames_scheduled(&self) -> u64 {
        self.frames_scheduled
    }

    /// Cumulative fault-injection accounting (offered, lost, corrupted,
    /// duplicated, delayed frames) across the run.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// Arrivals still waiting in the event queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Stamps of every report the most recent round close delivered, in
    /// delivery order — **including** reports the deadline closer then
    /// consumed as past-budget. This is the uncensored delay distribution:
    /// percentile observers that only look at served sessions would miss the
    /// expired tail.
    pub fn last_round_stamps(&self) -> &[(StationId, FrameStamp)] {
        &self.last_round_stamps
    }

    /// Virtual sounding instant of station `id` for the current round: the
    /// most recent cadence boundary, plus the station's phase offset.
    fn sound_ns(&self, id: StationId, profile: &StationProfile) -> VirtualNs {
        let interval = self.cfg.interval_ns();
        let cadence_round = self.round - self.round % profile.cadence;
        cadence_round * interval + id * self.cfg.phase_step_ns
    }

    /// Deadline of the round being collected: its nominal start plus the
    /// Eq. 7d budget (the closer's grace window extends past it).
    fn round_deadline_ns(&self) -> VirtualNs {
        self.round * self.cfg.interval_ns() + s_to_ns(self.cfg.budget.max_delay_s)
    }

    /// Drains every scheduled report — in deterministic `(offer time,
    /// station, seq)` order — through the shared medium and into the inner
    /// server as a timestamped ingest, advancing the virtual clock past the
    /// last arrival and the round deadline. Popping by offer time is what
    /// gives the medium physical FIFO semantics: an early-ready frame is
    /// never charged phantom queueing behind a late-ready one that merely
    /// ingested first.
    ///
    /// A failing ingest (deferred frame validation, a station deregistered
    /// after scheduling) drops that frame and is reported as the first error
    /// **after** the drain completes — the queue never carries stale frames
    /// into the next round. Fault-related rejections — CRC failures,
    /// suppressed duplicates, quarantined stations — are *expected* under an
    /// active fault model: they are absorbed into the round accounting and
    /// the session health machinery rather than surfaced as errors.
    ///
    /// Each popped frame passes through the fault injector. A lost or
    /// corrupted transmission still occupies the medium (its airtime is
    /// spent); the station then retransmits with exponential backoff — but
    /// only while the retry's projected end-to-end delay still fits the
    /// Eq. 7d budget plus grace, because a retry that can only arrive expired
    /// is wasted airtime.
    /// With `watermarks` set, the drain interleaves deadline watermarks into
    /// the event order: before each popped event, every watermark at or
    /// before that event's offer time fires into the inner server
    /// ([`StreamServing::advance_watermark`]) so shards micro-close
    /// mid-round; after the drain, the remaining watermarks up to the round
    /// deadline fire. Watermark times are derived purely from the virtual
    /// clock, so streaming drains are exactly as deterministic and replayable
    /// as barrier drains.
    fn deliver_arrivals(
        &mut self,
        watermarks: Option<(WatermarkClock, DeadlinePolicy)>,
    ) -> Option<ServeError> {
        let mut first_error = None;
        self.last_round_stamps.clear();
        self.round_lost = 0;
        self.round_retransmitted = 0;
        let mut watermarks = watermarks;
        while let Some((key, offer)) = self.queue.pop() {
            if let Some((clock, policy)) = watermarks.as_mut() {
                let step = clock.step_ns();
                while let Some(mark) = clock.pop_due(key.time_ns) {
                    self.inner.advance_watermark(mark, step, Some(*policy));
                }
            }
            let fate = self.injector.frame_fate();
            let grant = self.medium.transmit(key.time_ns, offer.frame.len() * 8);
            self.now_ns = self.now_ns.max(grant.end_ns);
            let (corrupt, duplicate, extra_delay_ns) = match fate {
                FrameFate::Lost => {
                    self.round_lost += 1;
                    self.schedule_retry(key.station, grant.end_ns, &offer);
                    continue;
                }
                FrameFate::Deliver {
                    corrupt,
                    duplicate,
                    extra_delay_ns,
                } => (corrupt, duplicate, extra_delay_ns),
            };
            let arrival_ns = grant.end_ns + extra_delay_ns;
            self.now_ns = self.now_ns.max(arrival_ns);
            let stamp = FrameStamp {
                arrival_ns,
                head_ns: offer.head_ns,
                queue_ns: (key.time_ns - offer.ready_ns) + grant.wait_ns + extra_delay_ns,
                air_ns: grant.air_ns,
                tail_ns: offer.tail_ns,
            };
            if corrupt {
                let mut damaged = offer.frame.clone();
                self.injector.corrupt_frame(&mut damaged);
                match self.inner.ingest_wire_at(key.station, &damaged, stamp) {
                    // The AP rejected the damaged bytes — CRC mismatch, an
                    // unrecognizable header (damage to the unprotected
                    // dispatch byte), or a quarantined station. The frame is
                    // gone either way; retransmit if the budget allows.
                    Err(
                        ServeError::Corrupt(..) | ServeError::Codec(_) | ServeError::Quarantined(_),
                    ) => {
                        self.schedule_retry(key.station, arrival_ns, &offer);
                    }
                    // Bit flips can cancel each other out and leave the frame
                    // intact; a surviving frame is a normal delivery.
                    Ok(_) => self.last_round_stamps.push((key.station, stamp)),
                    Err(ServeError::DuplicateFrame(..)) => {}
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
                continue;
            }
            let deliveries = if duplicate { 2 } else { 1 };
            for _ in 0..deliveries {
                match self.inner.ingest_wire_at(key.station, &offer.frame, stamp) {
                    Ok(_) => self.last_round_stamps.push((key.station, stamp)),
                    // The AP suppressed a re-delivered sequence number, or the
                    // station is quarantined — counted, not fatal.
                    Err(ServeError::DuplicateFrame(..) | ServeError::Quarantined(_)) => {}
                    Err(ServeError::Corrupt(..)) => {}
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
        let deadline_ns = self.round_deadline_ns();
        if let Some((clock, policy)) = watermarks.as_mut() {
            let step = clock.step_ns();
            while let Some(mark) = clock.pop_due(deadline_ns) {
                self.inner.advance_watermark(mark, step, Some(*policy));
            }
        }
        self.now_ns = self.now_ns.max(deadline_ns);
        first_error
    }

    /// Schedules a retransmission of `offer` after a failed transmission that
    /// ended at `failed_end_ns`, with exponential backoff per attempt —
    /// unless the retry budget is exhausted or the retry's projected
    /// end-to-end delay (head, queueing so far, backoff, one more airtime,
    /// tail) can no longer fit the Eq. 7d budget plus grace, in which case
    /// the report is given up for this round.
    fn schedule_retry(
        &mut self,
        station: StationId,
        failed_end_ns: VirtualNs,
        offer: &PendingOffer,
    ) {
        if offer.attempt >= self.cfg.max_retries {
            return;
        }
        let attempt = offer.attempt + 1;
        let backoff_ns = self
            .cfg
            .retry_backoff_ns
            .saturating_mul(1u64 << (attempt - 1).min(31));
        let retry_ns = failed_end_ns + backoff_ns;
        let air_estimate_ns = self.medium.frame_airtime_ns(offer.frame.len() * 8);
        let projected_ns = offer.head_ns
            + retry_ns.saturating_sub(offer.ready_ns)
            + air_estimate_ns
            + offer.tail_ns;
        let allowance_ns = s_to_ns(self.cfg.budget.max_delay_s) + s_to_ns(self.cfg.grace_s);
        if projected_ns > allowance_ns {
            return;
        }
        let mut retry = offer.clone();
        retry.attempt = attempt;
        // Sequenced retries get a fresh number so duplicate suppression never
        // mistakes a retransmission for a replayed frame.
        wire::set_frame_seq(&mut retry.frame, attempt as u16 + 1);
        self.queue.schedule(retry_ns, station, retry);
        self.round_retransmitted += 1;
    }
}

impl<S: StreamServing> RoundServing for EventDriver<S> {
    fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        self.inner.register_station(id, model_key, bits_per_value)?;
        // Re-association (e.g. after idle eviction by the inner server)
        // keeps a previously configured sounding cadence.
        let cadence = self.profiles.get(&id).map_or(1, |p| p.cadence);
        self.profiles
            .insert(id, StationProfile { model_key, cadence });
        Ok(())
    }

    fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError> {
        self.inner.deregister_station(id)?;
        self.profiles.remove(&id);
        Ok(())
    }

    fn is_registered(&self, id: StationId) -> bool {
        self.inner.is_registered(id)
    }

    /// Schedules the frame through virtual time instead of ingesting it
    /// directly: sounding instant → head compute + jitter → offer to the
    /// shared medium. Medium contention resolves at round close, in offer
    /// order; the frame reaches the inner server timestamped. Frame
    /// validation therefore also surfaces at close, not here.
    fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        if !self.inner.is_registered(id) {
            return Err(ServeError::UnknownStation(id));
        }
        let profile = *self
            .profiles
            .get(&id)
            .ok_or(ServeError::UnknownStation(id))?;
        let latency = self
            .latencies
            .get(profile.model_key)
            .copied()
            .unwrap_or_default();
        let sound_ns = self.sound_ns(id, &profile);
        let head_ns = latency.head_ns + self.jitter.draw();
        // The report is ready `head` after its sounding instant, but cannot
        // transmit before this round polls the station; a slow-cadence
        // station's report therefore queues for whole intervals, and that age
        // counts against the Eq. 7d budget like any other queueing.
        let ready_ns = sound_ns + head_ns;
        let poll_ns = self.round * self.cfg.interval_ns() + id * self.cfg.phase_step_ns;
        let offered_ns = ready_ns.max(poll_ns);
        let mut frame = frame.to_vec();
        // Under an active fault model every transmission is sequenced (first
        // attempt = 1), so the AP can suppress injected duplicates and tell
        // retransmissions apart. Fault-free frames stay byte-verbatim — the
        // zero-fault path must remain bit-exact with the lockstep drivers.
        if self.injector.is_active() {
            wire::set_frame_seq(&mut frame, 1);
        }
        let len = frame.len();
        self.queue.schedule(
            offered_ns,
            id,
            PendingOffer {
                frame,
                ready_ns,
                head_ns,
                tail_ns: latency.tail_ns,
                attempt: 0,
            },
        );
        self.frames_scheduled += 1;
        Ok(len)
    }

    /// The driver is the stamping authority: an externally supplied stamp is
    /// ignored and the frame is scheduled through virtual time like any
    /// other.
    fn ingest_wire_at(
        &mut self,
        id: StationId,
        frame: &[u8],
        _stamp: FrameStamp,
    ) -> Result<usize, ServeError> {
        self.ingest_wire(id, frame)
    }

    /// Closes the round **at its Eq. 7d deadline**: delivers every scheduled
    /// arrival to the inner server timestamped, then runs the inner
    /// deadline-aware close, which classifies each report on-time /
    /// late-but-usable / past-budget from its stamp.
    fn close_round(&mut self, mode: ServeMode) -> Result<RoundSummary, ServeError> {
        self.close_round_deadline(mode, self.cfg.policy())
    }

    fn close_round_deadline(
        &mut self,
        mode: ServeMode,
        policy: DeadlinePolicy,
    ) -> Result<RoundSummary, ServeError> {
        // The drain never short-circuits: the round always advances and the
        // inner close always runs, so one bad frame cannot leave stale
        // arrivals queued for the next round. The first ingest error (it
        // happened before the close) takes precedence in the result.
        let streaming = mode == ServeMode::Streaming || self.cfg.streaming;
        let watermarks = streaming.then(|| {
            let step = self.cfg.watermark_step_ns();
            let start = self.round * self.cfg.interval_ns();
            (WatermarkClock::new(start + step, step), policy)
        });
        let ingest_error = self.deliver_arrivals(watermarks);
        self.round += 1;
        let closed = if streaming {
            self.inner.finalize_stream_round(Some(policy))
        } else {
            self.inner.close_round_deadline(mode, policy)
        };
        match ingest_error {
            Some(e) => Err(e),
            None => closed.map(|mut summary| {
                summary.lost = self.round_lost;
                summary.retransmitted = self.round_retransmitted;
                summary
            }),
        }
    }

    fn evicted_in_last_round(&self) -> usize {
        self.inner.evicted_in_last_round()
    }

    fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        self.inner.feedback_of(id)
    }
}

/// Computes the model's head/tail latency on `accel` and binds it to `key`;
/// `None` binds zero compute latency (the lockstep degenerate case).
fn bind_accel<S: StreamServing>(
    driver: &mut EventDriver<S>,
    key: usize,
    model: &SplitBeamModel,
    accel: Option<&AcceleratorModel>,
) {
    match accel {
        Some(accel) => {
            let latency = accel.split_latency_from_config(model.config());
            driver.bind_model_latency(key, latency.head_s, latency.tail_s);
        }
        None => driver.bind_model_latency(key, 0.0, 0.0),
    }
}

/// Builds an event driver over a single-shard [`ApServer`] with `model`
/// registered, stations `0..stations` associated at `bits_per_value` bits,
/// and the model's compute latency drawn from `accel` (zero when `None`).
///
/// # Panics
/// Panics on invalid `bits_per_value` (registration is infallible otherwise).
pub fn build_event_driver(
    model: SplitBeamModel,
    stations: usize,
    bits_per_value: u8,
    cfg: EventConfig,
    accel: Option<&AcceleratorModel>,
) -> EventDriver<ApServer> {
    let mut server = ApServer::new();
    let key = server.register_model(model.clone());
    let mut driver = EventDriver::over(server, cfg);
    bind_accel(&mut driver, key, &model, accel);
    for id in 0..stations as StationId {
        driver
            .register_station(id, key, bits_per_value)
            .expect("fresh server accepts fleet registration");
    }
    driver
}

/// Builds an event driver over a [`ShardedApServer`] with `num_shards`
/// shards — the event clock is global, the round close fans out per shard.
///
/// # Panics
/// Panics on invalid `bits_per_value` (registration is infallible otherwise).
pub fn build_sharded_event_driver(
    model: SplitBeamModel,
    stations: usize,
    bits_per_value: u8,
    num_shards: usize,
    cfg: EventConfig,
    accel: Option<&AcceleratorModel>,
) -> EventDriver<ShardedApServer> {
    let mut server = ShardedApServer::new(num_shards);
    let key = server.register_model(model.clone());
    let mut driver = EventDriver::over(server, cfg);
    bind_accel(&mut driver, key, &model, accel);
    for id in 0..stations as StationId {
        driver
            .register_station(id, key, bits_per_value)
            .expect("fresh server accepts fleet registration");
    }
    driver
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{build_server, generate_traffic, serve_traffic, SimConfig};
    use crate::timing::FrameClass;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    #[test]
    fn lockstep_event_driver_matches_legacy_server() {
        let m = model(1);
        let cfg = SimConfig {
            stations: 5,
            rounds: 3,
            bits_per_value: 4,
            drop_every: 4,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let mut legacy = build_server(m.clone(), cfg.stations, cfg.bits_per_value);
        let mut event = build_event_driver(
            m,
            cfg.stations,
            cfg.bits_per_value,
            EventConfig::lockstep(),
            None,
        );
        let want = serve_traffic(&mut legacy, &traffic, ServeMode::Batched).unwrap();
        let got = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
        assert_eq!(got, want, "zero-delay event serving must equal lockstep");
        for id in 0..cfg.stations as StationId {
            assert_eq!(event.feedback_of(id), legacy.feedback_of(id));
        }
        for summary in &got.summaries {
            assert_eq!(summary.late, 0);
            assert_eq!(summary.expired, 0);
            assert_eq!(summary.on_time, summary.served);
            assert_eq!(summary.delay.total_ns(), 0);
        }
    }

    #[test]
    fn medium_contention_produces_queueing_delay() {
        let m = model(3);
        let cfg = SimConfig {
            stations: 6,
            rounds: 2,
            bits_per_value: 8,
            drop_every: 0,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        // Real medium, no jitter, no compute latency: all six stations offer
        // their frames at the round start and must serialize.
        let mut event = build_event_driver(
            m,
            cfg.stations,
            cfg.bits_per_value,
            EventConfig {
                feedback_rate_mbps: Some(24.0),
                ..EventConfig::lockstep()
            },
            None,
        );
        let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
        assert!(event.medium().total_wait_ns() > 0, "stations must contend");
        assert!(event.medium().total_air_ns() > 0);
        let round0 = &outcome.summaries[0];
        assert!(
            round0.delay.queue_ns > 0,
            "queueing must surface in summary"
        );
        assert!(round0.delay.air_ns > 0);
        assert_eq!(round0.delay.head_ns, 0, "no compute latency configured");
        // The last of six serialized frames waited ~5 frame times.
        assert!(round0.delay.worst_e2e_ns > 5 * event.medium().frame_airtime_ns(0));
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let m = model(5);
        let cfg = SimConfig {
            stations: 4,
            rounds: 3,
            bits_per_value: 6,
            drop_every: 5,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let event_cfg = EventConfig {
            jitter_max_ns: 800_000,
            seed: 99,
            feedback_rate_mbps: Some(24.0),
            phase_step_ns: 10_000,
            ..EventConfig::lockstep()
        };
        let accel = AcceleratorModel::zynq_200mhz(2, 2);
        let run = |m: SplitBeamModel| {
            let mut d =
                build_event_driver(m, cfg.stations, cfg.bits_per_value, event_cfg, Some(&accel));
            let outcome = serve_traffic(&mut d, &traffic, ServeMode::Batched).unwrap();
            (outcome, d.virtual_now_ns(), d.medium().total_wait_ns())
        };
        let a = run(m.clone());
        let b = run(m);
        assert_eq!(a, b, "same seed must reproduce the run exactly");
    }

    #[test]
    fn lossy_medium_retransmits_and_recovers() {
        let m = model(9);
        let cfg = SimConfig {
            stations: 4,
            rounds: 6,
            bits_per_value: 6,
            drop_every: 0,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let event_cfg = EventConfig {
            feedback_rate_mbps: Some(24.0),
            seed: 77,
            faults: FaultConfig {
                loss: 0.3,
                ..FaultConfig::none()
            },
            max_retries: 2,
            retry_backoff_ns: 50_000,
            ..EventConfig::lockstep()
        };
        let mut event = build_event_driver(m, cfg.stations, cfg.bits_per_value, event_cfg, None);
        let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();

        let stats = event.fault_stats();
        assert!(stats.lost > 0, "a 30% lossy plan must actually drop frames");
        let lost: usize = outcome.summaries.iter().map(|s| s.lost).sum();
        let retx: usize = outcome.summaries.iter().map(|s| s.retransmitted).sum();
        // Loss and retry bookkeeping both happen at medium-grant time, so the
        // per-round summaries must agree with the injector's own tally.
        assert_eq!(lost, stats.lost as usize);
        assert!(retx > 0, "losses within budget must trigger retransmission");
        assert!(retx <= lost, "every retry is provoked by a failed delivery");
        // Retries are re-offered to the injector, so the offered count exceeds
        // the original traffic volume by exactly the retransmissions drained.
        assert_eq!(stats.offered as usize, traffic.total_frames() + retx);
        // Bounded retransmission recovers most of the lost frames: far more
        // reports land than the no-retry expectation of ~70%.
        let expected_no_retry = traffic.total_frames() as f64 * (1.0 - 0.3);
        assert!(
            outcome.total_served() as f64 > expected_no_retry,
            "served {} vs no-retry expectation {expected_no_retry:.1}",
            outcome.total_served()
        );
        // Same seed, same fault plan: the run replays bit-exactly.
        let mut replay =
            build_event_driver(model(9), cfg.stations, cfg.bits_per_value, event_cfg, None);
        let again = serve_traffic(&mut replay, &traffic, ServeMode::Batched).unwrap();
        assert_eq!(again, outcome, "fault plans must be replayable");
        assert_eq!(replay.fault_stats(), stats);
    }

    #[test]
    fn hopeless_retries_are_abandoned_within_the_deadline_budget() {
        let m = model(11);
        let cfg = SimConfig {
            stations: 2,
            rounds: 3,
            bits_per_value: 4,
            drop_every: 0,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        // Certain loss with a backoff far beyond the 10 ms round budget: every
        // frame is lost and no retry can possibly land in time, so the driver
        // must give up instead of scheduling doomed transmissions.
        let event_cfg = EventConfig {
            feedback_rate_mbps: Some(24.0),
            seed: 13,
            faults: FaultConfig {
                loss: 1.0,
                ..FaultConfig::none()
            },
            max_retries: 8,
            retry_backoff_ns: s_to_ns(0.05),
            ..EventConfig::lockstep()
        };
        let mut event = build_event_driver(m, cfg.stations, cfg.bits_per_value, event_cfg, None);
        let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
        assert_eq!(
            outcome.total_served(),
            0,
            "nothing can survive certain loss"
        );
        let retx: usize = outcome.summaries.iter().map(|s| s.retransmitted).sum();
        assert_eq!(retx, 0, "retries that cannot meet Eq. 7d must not launch");
        assert_eq!(
            event.fault_stats().offered as usize,
            traffic.total_frames(),
            "only the original transmissions touch the medium"
        );
    }

    #[test]
    fn slow_cadence_station_report_ages_into_lateness() {
        let m = model(7);
        let cfg = SimConfig {
            stations: 2,
            rounds: 4,
            bits_per_value: 4,
            drop_every: 0,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let mut event = build_event_driver(
            m,
            cfg.stations,
            cfg.bits_per_value,
            EventConfig::lockstep(),
            None,
        );
        // Station 1 sounds every 4th round: its round-1/2/3 reports carry
        // round-0 CSI aged by one, two and three full 10 ms intervals.
        event.set_cadence(1, 4);
        let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
        // Round 1: the report is exactly one interval old — dead on the
        // 10 ms Eq. 7d budget, and the boundary is inclusive -> on time.
        assert_eq!(outcome.summaries[1].on_time, 2);
        assert_eq!(outcome.summaries[1].delay.worst_e2e_ns, s_to_ns(0.01));
        // Round 2: two intervals old -> past budget, on the grace edge
        // (inclusive) -> late-but-usable, served but never counted fresh.
        assert_eq!(outcome.summaries[2].late, 1);
        assert_eq!(outcome.summaries[2].on_time, 1);
        assert_eq!(outcome.summaries[2].served, 2);
        // Round 3: three intervals old -> past budget and grace -> expired,
        // consumed without reconstruction.
        assert_eq!(outcome.summaries[3].expired, 1);
        assert_eq!(outcome.summaries[3].served, 1);
        assert_eq!(outcome.summaries[3].on_time, 1);
        let policy = event.config().policy();
        assert_eq!(policy.classify(s_to_ns(0.01)), FrameClass::OnTime);
    }
}
