//! Multi-AP fleet serving: N access points on one event engine.
//!
//! ROADMAP item 1 asks for fleet scale — many [`ApServer`]s serving 100k+
//! concurrent sessions. This module provides the orchestration layer:
//!
//! * **one event queue for the whole fleet**: every station's frame offer is
//!   an event on a single [`EventQueue`] (the timer-wheel engine), drained in
//!   deterministic `(time, station, seq)` order each round;
//! * **overlapping-BSS contention**: each AP is bound to one of `channels`
//!   wireless channels, every channel is one [`SharedMedium`], so co-channel
//!   APs serialize on the *same* air and charge each other airtime. The wait
//!   a frame accrues while a *foreign* BSS holds the channel is accounted as
//!   cross-BSS airtime loss per AP;
//! * **station roaming**: [`Fleet::handoff`] moves a station between APs by
//!   releasing its full [`crate::StationSession`] state at the source and
//!   adopting it (rebound to the target's model key) at the target — no cold
//!   re-register, so pending payloads, feedback history, health state and
//!   staleness clocks travel. With identical model weights behind the source
//!   and target bindings, a roamed station's served feedback is bit-exact
//!   with a never-roamed control (pinned by the `fleet_roaming` tests).
//!
//! Determinism: virtual time only, seeded jitter, ordered event drain,
//! per-channel media updated in drain order — the same seed and call
//! sequence reproduces every summary bit-for-bit.

use crate::server::{ApServer, RoundSummary};
use crate::session::StationId;
use crate::timing::{DeadlinePolicy, FrameStamp};
use crate::ServeError;
use splitbeam::model::SplitBeamModel;
use splitbeam_hwsim::{EventQueue, MediumGrant, SeededJitter, SharedMedium, VirtualNs};
use std::collections::BTreeMap;

/// Fleet shape and physics knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of access points.
    pub aps: usize,
    /// Number of wireless channels; AP `i` is bound to channel `i % channels`,
    /// so `channels < aps` produces overlapping BSSs that contend for air.
    pub channels: usize,
    /// Feedback data rate per channel in Mbit/s; `None` models ideal
    /// (zero-airtime) media.
    pub rate_mbps: Option<f64>,
    /// Sounding round interval in virtual ns.
    pub round_ns: VirtualNs,
    /// Per-frame readiness jitter amplitude in ns (station-side compute +
    /// backoff spread), drawn from a stream seeded with `seed`.
    pub jitter_ns: VirtualNs,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Deadline policy applied at every AP's round close; `None` disables
    /// classification (everything on time).
    pub policy: Option<DeadlinePolicy>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            aps: 4,
            channels: 2,
            rate_mbps: Some(240.0),
            round_ns: 20_000_000,
            jitter_ns: 0,
            seed: 7,
            policy: Some(DeadlinePolicy::eq7d()),
        }
    }
}

/// One round's aggregate over the whole fleet, plus the per-AP summaries it
/// was folded from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRoundSummary {
    pub round: u64,
    pub served: usize,
    pub on_time: usize,
    pub late: usize,
    pub expired: usize,
    /// Frames rejected at ingest (quarantine, corruption, codec).
    pub rejected: usize,
    /// Handoffs whose station was served for the first time post-handoff
    /// during this round.
    pub handoffs_settled: usize,
    pub per_ap: Vec<RoundSummary>,
}

/// Fleet-lifetime aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    pub rounds: u64,
    pub served: u64,
    pub on_time: u64,
    pub late: u64,
    pub expired: u64,
    pub rejected: u64,
    /// Fraction of classified reports served within budget.
    pub deadline_hit_rate: f64,
    /// Completed handoffs.
    pub handoffs: u64,
    /// Handoffs already settled (station served at its new AP).
    pub handoffs_settled: u64,
    /// Mean virtual ns from handoff to the station's first post-handoff
    /// serve at the target AP.
    pub mean_handoff_latency_ns: f64,
    /// Total airtime carried across all channels.
    pub air_ns: u64,
    /// Total medium queueing across all channels.
    pub wait_ns: u64,
    /// The slice of that queueing charged while a *foreign* BSS held the
    /// channel — the overlapping-BSS airtime loss.
    pub cross_bss_wait_ns: u64,
}

struct Offer {
    frame: Vec<u8>,
    /// Station-side delay from the sounding instant until the frame was
    /// ready to transmit (folded into the stamp's head leg).
    head_ns: VirtualNs,
}

/// N access points on one event engine. See the module docs.
pub struct Fleet {
    cfg: FleetConfig,
    aps: Vec<ApServer>,
    channel_of: Vec<usize>,
    media: Vec<SharedMedium>,
    /// Last AP to transmit on each channel, for cross-BSS attribution.
    channel_owner: Vec<Option<usize>>,
    cross_bss_wait_ns: Vec<u64>,
    queue: EventQueue<Offer>,
    jitter: SeededJitter,
    /// Station → home AP index.
    home: BTreeMap<StationId, usize>,
    round: u64,
    now_ns: VirtualNs,
    handoffs: u64,
    /// Stations handed off and not yet served at their new AP, with the
    /// virtual handoff instant.
    pending_handoff: BTreeMap<StationId, VirtualNs>,
    handoff_latency_sum_ns: u64,
    handoffs_settled: u64,
    served: u64,
    on_time: u64,
    late: u64,
    expired: u64,
    rejected: u64,
}

impl Fleet {
    /// Builds a fleet per `cfg`. Panics when `aps == 0` or `channels == 0`
    /// (a fleet needs at least one of each).
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.aps > 0, "fleet needs at least one AP");
        assert!(cfg.channels > 0, "fleet needs at least one channel");
        let media = (0..cfg.channels)
            .map(|_| match cfg.rate_mbps {
                Some(rate) => SharedMedium::new(rate),
                None => SharedMedium::ideal(),
            })
            .collect();
        Self {
            aps: (0..cfg.aps).map(|_| ApServer::new()).collect(),
            channel_of: (0..cfg.aps).map(|i| i % cfg.channels).collect(),
            media,
            channel_owner: vec![None; cfg.channels],
            cross_bss_wait_ns: vec![0; cfg.aps],
            queue: EventQueue::new(),
            jitter: SeededJitter::new(cfg.jitter_ns, cfg.seed),
            home: BTreeMap::new(),
            round: 0,
            now_ns: 0,
            handoffs: 0,
            pending_handoff: BTreeMap::new(),
            handoff_latency_sum_ns: 0,
            handoffs_settled: 0,
            served: 0,
            on_time: 0,
            late: 0,
            expired: 0,
            rejected: 0,
            cfg,
        }
    }

    /// Registers `model` on every AP under one fleet-wide key, so a roaming
    /// session's binding stays valid (and bit-identical) at any AP.
    pub fn register_model(&mut self, model: &SplitBeamModel) -> usize {
        let mut key = 0;
        for ap in &mut self.aps {
            key = ap.register_model(model.clone());
        }
        key
    }

    /// Associates station `id` with AP `ap`.
    pub fn register_station(
        &mut self,
        id: StationId,
        ap: usize,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        self.aps[ap].register_station(id, model_key, bits_per_value)?;
        self.home.insert(id, ap);
        Ok(())
    }

    /// The AP currently serving `id`.
    pub fn home_ap(&self, id: StationId) -> Option<usize> {
        self.home.get(&id).copied()
    }

    pub fn ap(&self, index: usize) -> &ApServer {
        &self.aps[index]
    }

    pub fn num_aps(&self) -> usize {
        self.aps.len()
    }

    pub fn num_stations(&self) -> usize {
        self.home.len()
    }

    pub fn current_round(&self) -> u64 {
        self.round
    }

    pub fn now_ns(&self) -> VirtualNs {
        self.now_ns
    }

    /// The latest reconstructed feedback of `id`, wherever it is homed.
    pub fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        let ap = *self.home.get(&id)?;
        self.aps[ap].feedback_of(id)
    }

    /// Pre-sizes the event queue for `events` offers per round.
    pub fn reserve_events(&mut self, events: usize) {
        self.queue.reserve(events);
    }

    /// Offers a station's encoded wire frame for the current round. The
    /// frame becomes ready `jitter` ns into the round (the station-side
    /// compute/backoff spread) and is transmitted on the home AP's channel
    /// when the fleet closes the round.
    pub fn offer_frame(&mut self, id: StationId, frame: Vec<u8>) -> Result<(), ServeError> {
        if !self.home.contains_key(&id) {
            return Err(ServeError::UnknownStation(id));
        }
        let head_ns = self.jitter.draw();
        self.queue
            .schedule(self.now_ns + head_ns, id, Offer { frame, head_ns });
        Ok(())
    }

    /// Hands `id` off from its current AP to `to_ap`, moving its full
    /// session state without a cold re-register. A handoff to the current
    /// home is a no-op. On an adoption failure the session is restored at
    /// the source, so a failed handoff never drops the station.
    pub fn handoff(&mut self, id: StationId, to_ap: usize) -> Result<(), ServeError> {
        let from = *self.home.get(&id).ok_or(ServeError::UnknownStation(id))?;
        assert!(to_ap < self.aps.len(), "handoff target AP out of range");
        if from == to_ap {
            return Ok(());
        }
        let session = self.aps[from].release_station(id)?;
        let key = session.model_key();
        if let Err((session, e)) = self.aps[to_ap].adopt_station(session, key) {
            // Restore at the source: the slot was just vacated and the
            // binding is unchanged, so re-adoption cannot fail.
            self.aps[from]
                .adopt_station(session, key)
                .map_err(|(_, restore_err)| restore_err)?;
            return Err(e);
        }
        self.home.insert(id, to_ap);
        self.pending_handoff.insert(id, self.now_ns);
        self.handoffs += 1;
        Ok(())
    }

    /// Transmits one frame on `ap`'s channel, attributing any wait accrued
    /// while a foreign BSS held the channel as cross-BSS loss.
    fn transmit(&mut self, ap: usize, ready_ns: VirtualNs, bits: usize) -> MediumGrant {
        let ch = self.channel_of[ap];
        let busy_until = self.media[ch].busy_until_ns();
        if ready_ns < busy_until && self.channel_owner[ch].is_some_and(|owner| owner != ap) {
            self.cross_bss_wait_ns[ap] += busy_until - ready_ns;
        }
        let grant = self.media[ch].transmit(ready_ns, bits);
        self.channel_owner[ch] = Some(ap);
        grant
    }

    /// Closes the fleet round: drains every offered frame from the event
    /// queue in deterministic key order, serializes it on its AP's channel,
    /// ingests it with its virtual-time stamp, closes every AP's round under
    /// the deadline policy, and settles handoff latencies.
    ///
    /// # Errors
    /// The first AP round-close error (in AP order); ingest rejections
    /// (quarantine, corruption) are counted, not raised.
    pub fn close_round(&mut self) -> Result<FleetRoundSummary, ServeError> {
        while let Some((key, offer)) = self.queue.pop() {
            let id = key.station;
            let Some(&ap) = self.home.get(&id) else {
                self.rejected += 1;
                continue;
            };
            let grant = self.transmit(ap, key.time_ns, offer.frame.len() * 8);
            let stamp = FrameStamp {
                arrival_ns: grant.end_ns,
                head_ns: offer.head_ns,
                queue_ns: grant.wait_ns,
                air_ns: grant.air_ns,
                tail_ns: 0,
            };
            if self.aps[ap]
                .ingest_wire_at(id, &offer.frame, stamp)
                .is_err()
            {
                self.rejected += 1;
            }
        }
        let closed_round = self.round;
        let mut per_ap = Vec::with_capacity(self.aps.len());
        for ap in &mut self.aps {
            let summary = match self.cfg.policy {
                Some(policy) => ap.process_round_deadline(policy)?,
                None => ap.process_round()?,
            };
            per_ap.push(summary);
        }
        self.round += 1;
        self.now_ns += self.cfg.round_ns;

        // Settle handoffs: a station served at its new home for the first
        // time since the handoff completes the roam; latency is measured in
        // virtual time to the end of the serving round.
        let settled: Vec<StationId> = self
            .pending_handoff
            .iter()
            .filter(|(&id, _)| {
                let Some(&ap) = self.home.get(&id) else {
                    return true;
                };
                self.aps[ap]
                    .session(id)
                    .and_then(|s| s.last_round())
                    .is_some_and(|r| r >= closed_round)
            })
            .map(|(&id, _)| id)
            .collect();
        let mut handoffs_settled = 0usize;
        for id in settled {
            if let Some(at_ns) = self.pending_handoff.remove(&id) {
                self.handoff_latency_sum_ns += self.now_ns.saturating_sub(at_ns);
                self.handoffs_settled += 1;
                handoffs_settled += 1;
            }
        }

        let mut summary = FleetRoundSummary {
            round: closed_round,
            served: 0,
            on_time: 0,
            late: 0,
            expired: 0,
            rejected: 0,
            handoffs_settled,
            per_ap,
        };
        for s in &summary.per_ap {
            summary.served += s.served;
            summary.on_time += s.on_time;
            summary.late += s.late;
            summary.expired += s.expired;
        }
        self.served += summary.served as u64;
        self.on_time += summary.on_time as u64;
        self.late += summary.late as u64;
        self.expired += summary.expired as u64;
        Ok(summary)
    }

    /// Fleet-lifetime aggregates.
    pub fn stats(&self) -> FleetStats {
        let classified = self.on_time + self.late + self.expired;
        FleetStats {
            rounds: self.round,
            served: self.served,
            on_time: self.on_time,
            late: self.late,
            expired: self.expired,
            rejected: self.rejected,
            deadline_hit_rate: if classified == 0 {
                1.0
            } else {
                self.on_time as f64 / classified as f64
            },
            handoffs: self.handoffs,
            handoffs_settled: self.handoffs_settled,
            mean_handoff_latency_ns: if self.handoffs_settled == 0 {
                0.0
            } else {
                self.handoff_latency_sum_ns as f64 / self.handoffs_settled as f64
            },
            air_ns: self.media.iter().map(SharedMedium::total_air_ns).sum(),
            wait_ns: self.media.iter().map(SharedMedium::total_wait_ns).sum(),
            cross_bss_wait_ns: self.cross_bss_wait_ns.iter().sum(),
        }
    }

    /// Cross-BSS wait charged to one AP.
    pub fn cross_bss_wait_of(&self, ap: usize) -> u64 {
        self.cross_bss_wait_ns[ap]
    }

    /// The active event-queue backend name, for reports.
    pub fn queue_backend(&self) -> &'static str {
        self.queue.backend_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
        let csi: Vec<f32> = channel
            .sample(&mut rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = model.compress_quantized(&csi, bits).unwrap();
        splitbeam::wire::encode_feedback(&payload).unwrap()
    }

    #[test]
    fn co_channel_aps_charge_each_other_airtime() {
        let m = model(3);
        // Two APs, ONE channel: both BSSs contend for the same air.
        let mut fleet = Fleet::new(FleetConfig {
            aps: 2,
            channels: 1,
            rate_mbps: Some(24.0),
            jitter_ns: 0,
            policy: None,
            ..FleetConfig::default()
        });
        let key = fleet.register_model(&m);
        fleet.register_station(0, 0, key, 4).unwrap();
        fleet.register_station(1, 1, key, 4).unwrap();
        fleet.offer_frame(0, station_frame(&m, 10, 4)).unwrap();
        fleet.offer_frame(1, station_frame(&m, 11, 4)).unwrap();
        let summary = fleet.close_round().unwrap();
        assert_eq!(summary.served, 2);
        // Both frames were ready at t=0; station 0 drains first, so AP 1's
        // frame waited out a foreign BSS's airtime.
        assert_eq!(fleet.cross_bss_wait_of(0), 0);
        assert!(fleet.cross_bss_wait_of(1) > 0);
        let stats = fleet.stats();
        assert_eq!(stats.cross_bss_wait_ns, fleet.cross_bss_wait_of(1));
        assert!(stats.air_ns > 0);
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn separate_channels_do_not_contend() {
        let m = model(3);
        let mut fleet = Fleet::new(FleetConfig {
            aps: 2,
            channels: 2,
            rate_mbps: Some(24.0),
            jitter_ns: 0,
            policy: None,
            ..FleetConfig::default()
        });
        let key = fleet.register_model(&m);
        fleet.register_station(0, 0, key, 4).unwrap();
        fleet.register_station(1, 1, key, 4).unwrap();
        fleet.offer_frame(0, station_frame(&m, 10, 4)).unwrap();
        fleet.offer_frame(1, station_frame(&m, 11, 4)).unwrap();
        let summary = fleet.close_round().unwrap();
        assert_eq!(summary.served, 2);
        assert_eq!(fleet.stats().cross_bss_wait_ns, 0);
    }

    #[test]
    fn handoff_rebinds_without_cold_reregister_and_settles() {
        let m = model(5);
        let mut fleet = Fleet::new(FleetConfig {
            aps: 2,
            channels: 2,
            jitter_ns: 0,
            ..FleetConfig::default()
        });
        let key = fleet.register_model(&m);
        fleet.register_station(7, 0, key, 4).unwrap();
        fleet.offer_frame(7, station_frame(&m, 20, 4)).unwrap();
        fleet.close_round().unwrap();
        let before = fleet.feedback_of(7).unwrap().to_vec();

        fleet.handoff(7, 1).unwrap();
        assert_eq!(fleet.home_ap(7), Some(1));
        // The warm session (and its reconstructed feedback) traveled.
        assert_eq!(fleet.feedback_of(7).unwrap(), before.as_slice());
        assert_eq!(fleet.stats().handoffs, 1);
        assert_eq!(fleet.stats().handoffs_settled, 0);

        // Handoff to the current home is a no-op.
        fleet.handoff(7, 1).unwrap();
        assert_eq!(fleet.stats().handoffs, 1);

        fleet.offer_frame(7, station_frame(&m, 21, 4)).unwrap();
        let summary = fleet.close_round().unwrap();
        assert_eq!(summary.handoffs_settled, 1);
        let stats = fleet.stats();
        assert_eq!(stats.handoffs_settled, 1);
        // Settled at the end of the round that first served it post-handoff.
        assert!(stats.mean_handoff_latency_ns > 0.0);
    }

    #[test]
    fn unknown_station_offers_and_handoffs_are_rejected() {
        let m = model(5);
        let mut fleet = Fleet::new(FleetConfig::default());
        let _key = fleet.register_model(&m);
        assert_eq!(
            fleet.offer_frame(9, vec![0u8; 4]),
            Err(ServeError::UnknownStation(9))
        );
        assert_eq!(fleet.handoff(9, 1), Err(ServeError::UnknownStation(9)));
    }

    #[test]
    fn same_seed_fleets_are_bit_identical() {
        let m = model(11);
        let run = || {
            let mut fleet = Fleet::new(FleetConfig {
                aps: 3,
                channels: 2,
                jitter_ns: 50_000,
                ..FleetConfig::default()
            });
            let key = fleet.register_model(&m);
            for id in 0..9u64 {
                fleet
                    .register_station(id, (id % 3) as usize, key, 4)
                    .unwrap();
            }
            let mut summaries = Vec::new();
            for round in 0..3u64 {
                for id in 0..9u64 {
                    fleet
                        .offer_frame(id, station_frame(&m, 100 + id * 7 + round, 4))
                        .unwrap();
                }
                if round == 1 {
                    fleet.handoff(4, 0).unwrap();
                }
                summaries.push(fleet.close_round().unwrap());
            }
            let feedback: Vec<Vec<f32>> = (0..9u64)
                .map(|id| fleet.feedback_of(id).unwrap().to_vec())
                .collect();
            (summaries, feedback, fleet.stats())
        };
        let (s1, f1, st1) = run();
        let (s2, f2, st2) = run();
        assert_eq!(s1, s2);
        assert_eq!(f1, f2);
        assert_eq!(st1, st2);
    }
}
