//! Multi-core sharded AP serving.
//!
//! [`ShardedApServer`] partitions station sessions across `N` independent
//! shards (deterministic `id % N` mapping) and closes each sounding round by
//! processing every shard **in parallel**. Each shard is a full
//! [`crate::server::ApServer`]-grade serving core — its own session map and
//! its own round arena — so shards share nothing mutable and the per-shard
//! round close is the *very same code* the single-shard server runs. Because
//! the fused batched tail kernel's per-element accumulation is independent of
//! batch shape (see [`splitbeam::fused`]), splitting a model's stations
//! across shards changes batch boundaries but not a single output bit:
//! sharded serving is bit-exact with single-shard batched serving and with
//! the station-at-a-time serial reference, under every kernel backend.
//!
//! On top of the partitioning, this layer owns **session lifecycle**:
//!
//! * *capacity caps* — [`ShardedApServer::set_capacity`] bounds the fleet;
//!   registrations beyond it are rejected with
//!   [`ServeError::CapacityExceeded`],
//! * *idle eviction* — [`ShardedApServer::set_max_idle_rounds`] drops
//!   stations that produced no feedback for more than the configured number
//!   of rounds (never-reporting stations are measured from association),
//! * *clean re-registration* — a deregistered or evicted id can associate
//!   again and starts from a blank session.

use crate::server::{RoundOutcome, RoundSummary, ShardCore, TailEngine};
use crate::session::{StationId, StationSession};
use crate::timing::{DeadlinePolicy, FrameStamp, RoundDelayStats};
use crate::ServeError;
use rayon::prelude::*;
use splitbeam::fused::{QuantizedTail, TailWeights};
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::QuantizedFeedback;
use std::sync::Arc;

/// What one call to [`ShardedApServer::process_round`] did, merged across
/// shards (deterministically, in shard order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedRoundSummary {
    /// Index of the round that was just closed.
    pub round: u64,
    /// Stations served across all shards.
    pub served: usize,
    /// Stations whose feedback aged this round (reported before, not now).
    pub stale: usize,
    /// Registered stations that have never produced feedback.
    pub awaiting_first_report: usize,
    /// Batched tail invocations across all shards (one per model with pending
    /// traffic per shard — a sharded round runs more, smaller batches than a
    /// single-shard round).
    pub batches: usize,
    /// Served reports within the Eq. 7d budget (all of them for untimed
    /// lockstep closes).
    pub on_time: usize,
    /// Served reports past the budget but within the deadline grace window.
    pub late: usize,
    /// Reports past budget and grace, consumed without reconstruction.
    pub expired: usize,
    /// Virtual-delay breakdown summed over served reports, merged in shard
    /// order.
    pub delay: RoundDelayStats,
    /// Frames the fault-injected medium dropped this round (event-driven
    /// serving only; always `0` for lockstep closes).
    pub lost: usize,
    /// Frames rejected by the CRC-32 integrity check across all shards.
    pub corrupt: usize,
    /// Station retransmissions attempted this round (event-driven serving
    /// only).
    pub retransmitted: usize,
    /// Stale stations still served from last-known-good feedback (within the
    /// health policy's staleness cap), summed across shards.
    pub stale_served: usize,
    /// Shards that had at least one pending payload this round.
    pub shards_with_traffic: usize,
    /// Stations evicted after the close for exceeding the idle budget.
    pub evicted: usize,
}

impl ShardedRoundSummary {
    /// The single-server view of this round (eviction and shard counts
    /// dropped). `batches` counts per-shard batches, so it only matches a
    /// single-shard server's summary when `num_shards == 1`.
    pub fn as_round_summary(&self) -> RoundSummary {
        RoundSummary {
            round: self.round,
            served: self.served,
            stale: self.stale,
            awaiting_first_report: self.awaiting_first_report,
            batches: self.batches,
            on_time: self.on_time,
            late: self.late,
            expired: self.expired,
            delay: self.delay,
            lost: self.lost,
            corrupt: self.corrupt,
            retransmitted: self.retransmitted,
            stale_served: self.stale_served,
        }
    }
}

/// Per-shard slice of the last round close, recorded in shard order. This is
/// how stall-isolation is observed: a deliberately slow shard shows up here
/// with depressed `on_time` while every other shard's numbers are untouched
/// under streaming closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardRoundStats {
    /// Stations this shard served.
    pub served: usize,
    /// Served reports within the Eq. 7d budget.
    pub on_time: usize,
    /// Served reports past budget but within grace.
    pub late: usize,
    /// Reports consumed unreconstructed past budget and grace.
    pub expired: usize,
    /// Batched tail invocations this shard ran.
    pub batches: usize,
    /// Watermark-triggered micro-batch closes (0 for barrier rounds).
    pub micro_closes: usize,
}

/// A multi-core AP serving layer: `N` session shards closed in parallel per
/// sounding round, with capacity caps and idle eviction. See the module docs
/// for the exactness argument.
#[derive(Debug, Clone)]
pub struct ShardedApServer {
    models: Vec<Arc<SplitBeamModel>>,
    /// Int8 tails bound from the registered models (same indices); consulted
    /// only when `tail_weights` is [`TailWeights::Int8`].
    tails: Vec<Arc<QuantizedTail>>,
    /// Which weight format every shard's round close reconstructs with.
    tail_weights: TailWeights,
    shards: Vec<ShardCore>,
    round: u64,
    max_idle_rounds: Option<u64>,
    capacity: Option<usize>,
    stations: usize,
    last_evicted: usize,
    /// When set, wire ingest enqueues onto each shard's bounded ring and
    /// rounds close via watermark-driven micro-batches
    /// ([`ShardedApServer::advance_watermark`] /
    /// [`ShardedApServer::finalize_stream_round`]).
    streaming: bool,
    /// Per-shard stats of the last round close, in shard order.
    last_shard_stats: Vec<ShardRoundStats>,
}

impl ShardedApServer {
    /// Creates an empty server with `num_shards` session shards (clamped to
    /// at least one).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        Self {
            models: Vec::new(),
            tails: Vec::new(),
            tail_weights: TailWeights::from_env(),
            shards: (0..num_shards).map(|_| ShardCore::default()).collect(),
            round: 0,
            max_idle_rounds: None,
            capacity: None,
            stations: 0,
            last_evicted: 0,
            streaming: false,
            last_shard_stats: Vec::new(),
        }
    }

    /// Creates a server with the shard count resolved from the environment:
    /// `SPLITBEAM_SHARDS` when set (clamped to `1..=64`), otherwise the
    /// available parallelism capped at 8.
    pub fn from_env() -> Self {
        Self::new(env_shards())
    }

    /// Number of session shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The deterministic shard a station id maps to (`id % num_shards`).
    pub fn shard_of(&self, id: StationId) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    /// Caps the number of simultaneously registered stations; `None` lifts
    /// the cap. Registrations beyond the cap fail with
    /// [`ServeError::CapacityExceeded`]; already-registered stations are
    /// never dropped by lowering the cap.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// Enables idle eviction: after each round close, stations idle for more
    /// than `max_idle_rounds` sounding rounds are removed. `None` (the
    /// default) disables eviction.
    pub fn set_max_idle_rounds(&mut self, max_idle_rounds: Option<u64>) {
        self.max_idle_rounds = max_idle_rounds;
    }

    /// Registers a tail model and returns its key. Stations referencing the
    /// same key share the model. The int8 tail is quantized and packed here,
    /// once, shared read-only by every shard.
    pub fn register_model(&mut self, model: SplitBeamModel) -> usize {
        self.tails.push(Arc::new(QuantizedTail::bind(&model)));
        self.models.push(Arc::new(model));
        self.models.len() - 1
    }

    /// The weight format round closes currently reconstruct with.
    pub fn tail_weights(&self) -> TailWeights {
        self.tail_weights
    }

    /// Switches the tail weight format for subsequent round closes (all
    /// shards; safe at any round boundary).
    pub fn set_tail_weights(&mut self, mode: TailWeights) {
        self.tail_weights = mode;
    }

    /// The model behind `key`.
    pub fn model(&self, key: usize) -> Option<&SplitBeamModel> {
        self.models.get(key).map(Arc::as_ref)
    }

    /// Associates a station with a registered model and quantizer width,
    /// placing its session on shard [`ShardedApServer::shard_of`]`(id)`.
    ///
    /// # Errors
    /// The same validation (and validation order) as
    /// [`crate::server::ApServer::register_station`], plus
    /// [`ServeError::CapacityExceeded`] when the request is otherwise valid
    /// but the fleet is at the configured cap.
    pub fn register_station(
        &mut self,
        id: StationId,
        model_key: usize,
        bits_per_value: u8,
    ) -> Result<(), ServeError> {
        let shard = self.shard_of(id);
        self.shards[shard].validate_registration(
            self.models.len(),
            id,
            model_key,
            bits_per_value,
        )?;
        if let Some(cap) = self.capacity {
            if self.stations >= cap {
                return Err(ServeError::CapacityExceeded(id, cap));
            }
        }
        self.shards[shard].register_station(
            self.models.len(),
            id,
            model_key,
            bits_per_value,
            self.round,
        )?;
        self.stations += 1;
        Ok(())
    }

    /// Removes a station's session (disassociation). The id can register
    /// again afterwards with a completely fresh session.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] when the id is not registered.
    pub fn deregister_station(&mut self, id: StationId) -> Result<(), ServeError> {
        let shard = self.shard_of(id);
        self.shards[shard].deregister_station(id)?;
        self.stations -= 1;
        Ok(())
    }

    /// Releases station `id` for a fleet handoff, returning its full session
    /// state (payloads, health, staleness clocks) for the target AP to
    /// adopt. Unlike deregistration, nothing is reset.
    ///
    /// # Errors
    /// [`ServeError::UnknownStation`] when the id is not registered.
    pub fn release_station(&mut self, id: StationId) -> Result<StationSession, ServeError> {
        let shard = self.shard_of(id);
        let session = self.shards[shard].release_station(id)?;
        self.stations -= 1;
        Ok(session)
    }

    /// Adopts a roaming station's session rebound to this server's
    /// `model_key` — the warm half of a fleet handoff; no cold re-register,
    /// so the session keeps its feedback history and health state.
    ///
    /// # Errors
    /// The registration validations, plus [`ServeError::CapacityExceeded`]
    /// at the configured cap; the rejected session rides back in the error
    /// so the caller can restore it at the source instead of dropping the
    /// station.
    // The fat Err is the point: the rejected session must ride back to the
    // caller for restore, and boxing a cold failure path buys nothing.
    #[allow(clippy::result_large_err)]
    pub fn adopt_station(
        &mut self,
        session: StationSession,
        model_key: usize,
    ) -> Result<(), (StationSession, ServeError)> {
        let id = session.id();
        let shard = self.shard_of(id);
        if let Err(e) = self.shards[shard].validate_registration(
            self.models.len(),
            id,
            model_key,
            session.bits_per_value(),
        ) {
            return Err((session, e));
        }
        if let Some(cap) = self.capacity {
            if self.stations >= cap {
                return Err((session, ServeError::CapacityExceeded(id, cap)));
            }
        }
        self.shards[shard].adopt_station(self.models.len(), session, model_key)?;
        self.stations += 1;
        Ok(())
    }

    /// Number of registered stations across all shards.
    pub fn num_stations(&self) -> usize {
        self.stations
    }

    /// The session of station `id`.
    pub fn session(&self, id: StationId) -> Option<&StationSession> {
        self.shards[self.shard_of(id)].sessions.get(id)
    }

    /// Iterates over all sessions, shard by shard (id order within a shard).
    pub fn sessions(&self) -> impl Iterator<Item = &StationSession> {
        self.shards.iter().flat_map(|s| s.sessions.values())
    }

    /// All registered station ids in ascending order (merged across shards).
    pub fn station_ids(&self) -> Vec<StationId> {
        let mut ids: Vec<StationId> = self.sessions().map(StationSession::id).collect();
        ids.sort_unstable();
        ids
    }

    /// Index of the sounding round currently being collected.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Number of payloads waiting for the next round close.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(ShardCore::pending_count).sum()
    }

    /// Ingests one bit-packed wire frame from station `id`, routed to its
    /// shard's recycled decode buffer.
    ///
    /// # Errors
    /// Same contract as [`crate::server::ApServer::ingest_wire`].
    pub fn ingest_wire(&mut self, id: StationId, frame: &[u8]) -> Result<usize, ServeError> {
        let shard = self.shard_of(id);
        if self.streaming {
            return self.shards[shard].stream_ingest(
                &self.models,
                id,
                frame,
                FrameStamp::default(),
                self.round,
            );
        }
        self.shards[shard].ingest_wire(&self.models, id, frame, self.round)
    }

    /// Timestamped wire ingest: records the frame's virtual-time stamp on the
    /// session so a deadline-aware round close can classify it.
    ///
    /// # Errors
    /// Same contract as [`ShardedApServer::ingest_wire`].
    pub fn ingest_wire_at(
        &mut self,
        id: StationId,
        frame: &[u8],
        stamp: FrameStamp,
    ) -> Result<usize, ServeError> {
        let shard = self.shard_of(id);
        if self.streaming {
            return self.shards[shard].stream_ingest(&self.models, id, frame, stamp, self.round);
        }
        self.shards[shard].ingest_wire_at(&self.models, id, frame, stamp, self.round)
    }

    /// Ingests an already-decoded payload (in-process stations, tests).
    ///
    /// # Errors
    /// Same validation as [`ShardedApServer::ingest_wire`].
    pub fn ingest_payload(
        &mut self,
        id: StationId,
        payload: QuantizedFeedback,
        wire_bytes: usize,
    ) -> Result<usize, ServeError> {
        let shard = self.shard_of(id);
        self.shards[shard].ingest_payload(&self.models, id, payload, wire_bytes, self.round)
    }

    /// The health thresholds applied to every session.
    pub fn health_policy(&self) -> crate::server::HealthPolicy {
        self.shards[0].health
    }

    /// Replaces the health thresholds on every shard (takes effect from the
    /// next ingest).
    pub fn set_health_policy(&mut self, policy: crate::server::HealthPolicy) {
        for shard in &mut self.shards {
            shard.health = policy;
        }
    }

    /// Closes the current round: every shard runs its fused batched round
    /// close **in parallel** (one rayon task per shard), idle stations are
    /// evicted when an idle budget is configured, and the per-shard summaries
    /// are merged deterministically in shard order.
    ///
    /// Per-station results are bit-identical to
    /// [`crate::server::ApServer::process_round`] and
    /// [`crate::server::ApServer::process_round_serial`] on identical traffic,
    /// for every shard count and kernel backend.
    ///
    /// # Errors
    /// [`ServeError::Model`] when a batch fails; the same partial-round
    /// semantics as the single-shard server apply per shard (only the failed
    /// batch's payloads are consumed), every shard still closes, and the
    /// first error in shard order is returned.
    pub fn process_round(&mut self) -> Result<ShardedRoundSummary, ServeError> {
        self.process_round_with(None)
    }

    /// Deadline-aware parallel round close: every shard classifies its
    /// pending reports against `policy` (expired reports consumed without
    /// reconstruction, late ones served but flagged) with the same semantics
    /// as [`crate::server::ApServer::process_round_deadline`].
    ///
    /// # Errors
    /// Same contract as [`ShardedApServer::process_round`].
    pub fn process_round_deadline(
        &mut self,
        policy: DeadlinePolicy,
    ) -> Result<ShardedRoundSummary, ServeError> {
        self.process_round_with(Some(policy))
    }

    fn process_round_with(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<ShardedRoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        let max_idle = self.max_idle_rounds;
        // The barrier couples every shard to the slowest one: the whole round
        // close waits for the most stalled shard, so every shard's reports pay
        // that worst-case close lag. (Streaming closes pay only their own
        // shard's stall — that asymmetry is the point of the refactor.)
        let barrier_lag = self.barrier_lag_ns();
        let results: Vec<(RoundOutcome, usize, bool)> = self
            .shards
            .par_iter_mut()
            .map(|shard: &mut ShardCore| {
                let had_traffic = shard.pending_count() > 0;
                let outcome = shard.close_round_batched(&engine, round, policy, barrier_lag);
                let evicted = match max_idle {
                    Some(budget) => shard.evict_idle(round, budget),
                    None => 0,
                };
                (outcome, evicted, had_traffic)
            })
            .collect();
        self.merge_round(round, results)
    }

    /// Reference path: closes the round with every shard's station-at-a-time
    /// serial close, shard after shard (no parallelism). Produces bit-exact
    /// session state to [`ShardedApServer::process_round`]; kept for
    /// verification.
    ///
    /// # Errors
    /// Same contract as [`ShardedApServer::process_round`].
    pub fn process_round_serial(&mut self) -> Result<ShardedRoundSummary, ServeError> {
        self.process_round_serial_with(None)
    }

    /// Deadline-aware serial reference for
    /// [`ShardedApServer::process_round_deadline`].
    ///
    /// # Errors
    /// Same contract as [`ShardedApServer::process_round_serial`].
    pub fn process_round_serial_deadline(
        &mut self,
        policy: DeadlinePolicy,
    ) -> Result<ShardedRoundSummary, ServeError> {
        self.process_round_serial_with(Some(policy))
    }

    fn process_round_serial_with(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<ShardedRoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        let max_idle = self.max_idle_rounds;
        let barrier_lag = self.barrier_lag_ns();
        let results: Vec<(RoundOutcome, usize, bool)> = self
            .shards
            .iter_mut()
            .map(|shard| {
                let had_traffic = shard.pending_count() > 0;
                let outcome = shard.close_round_serial(&engine, round, policy, barrier_lag);
                let evicted = match max_idle {
                    Some(budget) => shard.evict_idle(round, budget),
                    None => 0,
                };
                (outcome, evicted, had_traffic)
            })
            .collect();
        self.merge_round(round, results)
    }

    /// The close lag every shard pays under the round barrier: the maximum
    /// stall across all shards (the barrier waits for the slowest).
    fn barrier_lag_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.stall_ns).max().unwrap_or(0)
    }

    /// Deterministic merge of the per-shard outcomes, in shard order.
    fn merge_round(
        &mut self,
        round: u64,
        results: Vec<(RoundOutcome, usize, bool)>,
    ) -> Result<ShardedRoundSummary, ServeError> {
        let mut summary = ShardedRoundSummary {
            round,
            served: 0,
            stale: 0,
            awaiting_first_report: 0,
            batches: 0,
            on_time: 0,
            late: 0,
            expired: 0,
            delay: RoundDelayStats::default(),
            lost: 0,
            corrupt: 0,
            retransmitted: 0,
            stale_served: 0,
            shards_with_traffic: 0,
            evicted: 0,
        };
        let mut first_error = None;
        self.last_shard_stats.clear();
        for (outcome, evicted, had_traffic) in results {
            self.last_shard_stats.push(ShardRoundStats {
                served: outcome.served,
                on_time: outcome.on_time,
                late: outcome.late,
                expired: outcome.expired,
                batches: outcome.batches,
                micro_closes: outcome.micro_closes,
            });
            summary.served += outcome.served;
            summary.stale += outcome.stale;
            summary.awaiting_first_report += outcome.awaiting_first_report;
            summary.batches += outcome.batches;
            summary.on_time += outcome.on_time;
            summary.late += outcome.late;
            summary.expired += outcome.expired;
            summary.delay.merge(&outcome.delay);
            summary.corrupt += outcome.corrupt;
            summary.stale_served += outcome.stale_served;
            summary.shards_with_traffic += usize::from(had_traffic);
            summary.evicted += evicted;
            if first_error.is_none() {
                first_error = outcome.error;
            }
        }
        self.stations -= summary.evicted;
        self.last_evicted = summary.evicted;
        match first_error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    }

    /// Stations evicted by the most recent round close (`0` before the first
    /// close, or when eviction is disabled). This is how the trait-driven
    /// serving loop observes eviction counts without the sharded summary.
    pub fn evicted_in_last_round(&self) -> usize {
        self.last_evicted
    }

    /// Per-shard stats of the most recent round close, in shard order (empty
    /// before the first close).
    pub fn shard_round_stats(&self) -> &[ShardRoundStats] {
        &self.last_shard_stats
    }

    /// Switches between lockstep and streaming ingest across all shards.
    /// Only toggle while quiescent (no frames queued or pending).
    pub fn set_streaming(&mut self, on: bool) {
        self.streaming = on;
    }

    /// Whether streaming ingest is active.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Sets shard `shard`'s artificial close lag (stalled-shard model).
    /// Under barrier closes **every** shard's reports pay the maximum stall
    /// (the barrier waits for the slowest shard); under streaming closes each
    /// shard pays only its own.
    ///
    /// # Panics
    /// When `shard` is out of range.
    pub fn set_shard_stall_ns(&mut self, shard: usize, ns: u64) {
        self.shards[shard].stall_ns = ns;
    }

    /// One watermark tick at virtual time `watermark_ns` with tick period
    /// `step_ns`: every shard commits its due frames and micro-closes its
    /// pending batch iff its own oldest pending frame's Eq. 7d service
    /// deadline falls before the next watermark — **independently of every
    /// other shard** (no barrier). Shards advance serially in shard order,
    /// which keeps the close deterministic.
    pub fn advance_watermark(
        &mut self,
        watermark_ns: u64,
        step_ns: u64,
        policy: Option<DeadlinePolicy>,
    ) {
        let round = self.round;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        for shard in &mut self.shards {
            shard.advance_watermark(&engine, round, watermark_ns, step_ns, policy);
        }
    }

    /// Streaming round close: every shard (in parallel) commits its remaining
    /// queued frames, serves any remaining pending batch with its **own**
    /// stall as close lag, folds in its accumulated micro-batch summaries,
    /// and runs the once-per-round health pass; then eviction and the
    /// deterministic shard-order merge proceed exactly as in
    /// [`ShardedApServer::process_round`].
    ///
    /// With no intermediate watermark fired and no stalls this is bit-exact
    /// with [`ShardedApServer::process_round`].
    ///
    /// # Errors
    /// Same contract as [`ShardedApServer::process_round`].
    pub fn finalize_stream_round(
        &mut self,
        policy: Option<DeadlinePolicy>,
    ) -> Result<ShardedRoundSummary, ServeError> {
        let round = self.round;
        self.round += 1;
        let engine = TailEngine::new(&self.models, &self.tails, self.tail_weights);
        let max_idle = self.max_idle_rounds;
        let results: Vec<(RoundOutcome, usize, bool)> = self
            .shards
            .par_iter_mut()
            .map(|shard: &mut ShardCore| {
                let had_traffic = shard.round_had_traffic();
                let outcome = shard.finalize_stream_round(&engine, round, policy);
                let evicted = match max_idle {
                    Some(budget) => shard.evict_idle(round, budget),
                    None => 0,
                };
                (outcome, evicted, had_traffic)
            })
            .collect();
        self.merge_round(round, results)
    }

    /// The latest reconstructed feedback of station `id`, in the tail's flat
    /// real-interleaved layout.
    pub fn feedback_of(&self, id: StationId) -> Option<&[f32]> {
        self.shards[self.shard_of(id)]
            .sessions
            .get(id)
            .and_then(StationSession::feedback)
    }

    /// Stations (ascending id order, merged across shards) whose feedback is
    /// at most `max_age` rounds old, relative to the last closed round.
    /// Quarantined stations are excluded, matching the single-shard server.
    pub fn fresh_station_ids(&self, max_age: u64) -> Vec<StationId> {
        let now = self.round.saturating_sub(1);
        let mut ids: Vec<StationId> = self
            .sessions()
            .filter(|s| {
                s.is_fresh(now, max_age) && s.health() != crate::session::SessionHealth::Quarantined
            })
            .map(StationSession::id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Shard count from the environment: `SPLITBEAM_SHARDS` when set (clamped to
/// `1..=64`), otherwise the available parallelism capped at 8.
pub fn env_shards() -> usize {
    match mimo_math::env::parse::<usize>("SPLITBEAM_SHARDS") {
        Some(n) => n.clamp(1, 64),
        None => rayon::current_num_threads().clamp(1, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ApServer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use splitbeam::config::{CompressionLevel, SplitBeamConfig};
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::{Bandwidth, MimoConfig};

    fn model(seed: u64) -> SplitBeamModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SplitBeamModel::new(
            SplitBeamConfig::new(
                MimoConfig::symmetric(2, Bandwidth::Mhz20),
                CompressionLevel::OneEighth,
            ),
            &mut rng,
        )
    }

    fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
        let csi: Vec<f32> = channel
            .sample(&mut rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = model.compress_quantized(&csi, bits).unwrap();
        splitbeam::wire::encode_feedback(&payload).unwrap()
    }

    #[test]
    fn ids_map_to_shards_deterministically() {
        let server = ShardedApServer::new(4);
        assert_eq!(server.num_shards(), 4);
        for id in 0..32u64 {
            assert_eq!(server.shard_of(id), (id % 4) as usize);
        }
        // Shard count clamps to at least one.
        assert_eq!(ShardedApServer::new(0).num_shards(), 1);
        assert!(env_shards() >= 1);
    }

    #[test]
    fn sharded_round_is_bit_exact_with_single_shard_and_serial() {
        let m = model(31);
        let stations = 9u64;
        let bits = 6u8;
        let mut single = ApServer::new();
        let skey = single.register_model(m.clone());
        let mut serial = ApServer::new();
        let serial_key = serial.register_model(m.clone());
        let mut sharded: Vec<ShardedApServer> = [1usize, 2, 4, 7]
            .iter()
            .map(|&n| {
                let mut s = ShardedApServer::new(n);
                let key = s.register_model(m.clone());
                for id in 0..stations {
                    s.register_station(id, key, bits).unwrap();
                }
                s
            })
            .collect();
        for id in 0..stations {
            single.register_station(id, skey, bits).unwrap();
            serial.register_station(id, serial_key, bits).unwrap();
        }
        for round in 0..3u64 {
            for id in 0..stations {
                if (round + id) % 4 == 1 {
                    continue; // drop some reports
                }
                let frame = station_frame(&m, 500 + round * stations + id, bits);
                single.ingest_wire(id, &frame).unwrap();
                serial.ingest_wire(id, &frame).unwrap();
                for s in sharded.iter_mut() {
                    s.ingest_wire(id, &frame).unwrap();
                }
            }
            let want = single.process_round().unwrap();
            let want_serial = serial.process_round_serial().unwrap();
            assert_eq!(want, want_serial);
            for s in sharded.iter_mut() {
                let got = s.process_round().unwrap();
                assert_eq!(
                    (got.round, got.served, got.stale, got.awaiting_first_report),
                    (
                        want.round,
                        want.served,
                        want.stale,
                        want.awaiting_first_report
                    ),
                    "{} shards, round {round}",
                    s.num_shards()
                );
                assert_eq!(got.evicted, 0);
                for id in 0..stations {
                    assert_eq!(
                        s.feedback_of(id),
                        single.feedback_of(id),
                        "{} shards, round {round}, station {id}",
                        s.num_shards()
                    );
                }
            }
        }
        // One-shard summaries match the single server exactly, batches included.
        assert_eq!(sharded[0].pending_count(), 0);
    }

    #[test]
    fn capacity_cap_rejects_and_reopens() {
        let m = model(33);
        let mut server = ShardedApServer::new(3);
        let key = server.register_model(m);
        server.set_capacity(Some(2));
        server.register_station(0, key, 8).unwrap();
        server.register_station(1, key, 8).unwrap();
        assert_eq!(
            server.register_station(2, key, 8),
            Err(ServeError::CapacityExceeded(2, 2))
        );
        // A duplicate id reports as duplicate, not capacity.
        assert_eq!(
            server.register_station(1, key, 8),
            Err(ServeError::DuplicateStation(1))
        );
        // Departures free capacity.
        server.deregister_station(0).unwrap();
        server.register_station(2, key, 8).unwrap();
        assert_eq!(server.num_stations(), 2);
        assert_eq!(server.station_ids(), vec![1, 2]);
        // Lifting the cap reopens registration.
        server.set_capacity(None);
        server.register_station(0, key, 8).unwrap();
        assert_eq!(server.num_stations(), 3);
    }

    #[test]
    fn idle_stations_are_evicted_and_can_reregister() {
        let m = model(35);
        let mut server = ShardedApServer::new(2);
        let key = server.register_model(m.clone());
        server.set_max_idle_rounds(Some(1));
        for id in 0..4u64 {
            server.register_station(id, key, 8).unwrap();
        }
        // Rounds 0..3: stations 0 and 1 keep reporting, 2 and 3 stay silent.
        let mut evicted_total = 0;
        for round in 0..3u64 {
            for id in 0..2u64 {
                let frame = station_frame(&m, 700 + round * 2 + id, 8);
                server.ingest_wire(id, &frame).unwrap();
            }
            let summary = server.process_round().unwrap();
            evicted_total += summary.evicted;
        }
        // Stations 2 and 3 never reported; idle exceeded the 1-round budget
        // after round 2 closed.
        assert_eq!(evicted_total, 2);
        assert_eq!(server.num_stations(), 2);
        assert!(server.session(2).is_none());
        assert!(server.session(3).is_none());
        assert_eq!(
            server.ingest_wire(2, &station_frame(&m, 800, 8)),
            Err(ServeError::UnknownStation(2))
        );
        // Clean re-registration: fresh session, joins at the current round.
        server.register_station(2, key, 8).unwrap();
        let session = server.session(2).unwrap();
        assert!(session.feedback().is_none());
        assert_eq!(session.joined_round(), 3);
        // An active reporter is never evicted.
        assert!(server.session(0).is_some());
        assert!(server.feedback_of(0).is_some());
    }

    #[test]
    fn sharded_serial_reference_matches_parallel() {
        let m = model(37);
        let bits = 5u8;
        let mut parallel = ShardedApServer::new(3);
        let pkey = parallel.register_model(m.clone());
        let mut serial = ShardedApServer::new(3);
        let skey = serial.register_model(m.clone());
        for id in 0..7u64 {
            parallel.register_station(id, pkey, bits).unwrap();
            serial.register_station(id, skey, bits).unwrap();
        }
        for round in 0..2u64 {
            for id in 0..7u64 {
                let frame = station_frame(&m, 900 + round * 7 + id, bits);
                parallel.ingest_wire(id, &frame).unwrap();
                serial.ingest_wire(id, &frame).unwrap();
            }
            let p = parallel.process_round().unwrap();
            let s = serial.process_round_serial().unwrap();
            assert_eq!(
                (p.round, p.served, p.stale, p.awaiting_first_report),
                (s.round, s.served, s.stale, s.awaiting_first_report)
            );
            for id in 0..7u64 {
                assert_eq!(parallel.feedback_of(id), serial.feedback_of(id));
            }
        }
    }
}
