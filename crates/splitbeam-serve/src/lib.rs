//! AP-side SplitBeam feedback **serving layer**.
//!
//! The paper's airtime and compute wins (Section IV) only materialize at the
//! access point, which aggregates head outputs from *many* stations across
//! sounding rounds and runs the tail reconstruction for all of them. This
//! crate turns the batched kernels of `splitbeam`/`neural` into that service:
//!
//! * [`session`] — per-station state: model binding, quantizer width, the last
//!   reconstructed `V̂` and its age in sounding rounds,
//! * [`server`] — the [`ApServer`]: ingests bit-packed wire frames
//!   ([`splitbeam::wire`]), coalesces everything pending into one batched tail
//!   inference per model at round boundaries (bit-exact with serving each
//!   station alone), and groups fresh stations into `Nt`-sized MU-MIMO groups
//!   for the zero-forcing precoder,
//! * [`shard`] — the [`ShardedApServer`]: partitions sessions across `N`
//!   shards (deterministic `id % N` mapping), closes every shard's round in
//!   parallel — bit-exact with the single-shard batched path and the serial
//!   reference — and owns session lifecycle: capacity caps, idle eviction and
//!   clean re-registration,
//! * [`driver`] — a simulated multi-station sounding-round driver: station-side
//!   compress → quantize → wire-encode traffic generation (including session
//!   churn: joins, departures, bursty drops), AP-side serving in batched,
//!   station-at-a-time or sharded mode, and the end-to-end
//!   `simulate_mu_mimo_ber` link check over the served feedback,
//! * [`timing`] — virtual-time frame stamps ([`FrameStamp`]) and the Eq. 7d
//!   [`DeadlinePolicy`] the deadline-aware round closer enforces: every
//!   report is classified on-time / late-but-usable / past-budget **at round
//!   close**, from its ingest timestamp,
//! * [`event`] — the [`EventDriver`]: discrete-event virtual-clock serving on
//!   top of any [`driver::RoundServing`] server — per-station sounding
//!   cadences, head/tail compute latencies from the accelerator model, seeded
//!   jitter and shared-medium contention, with the lockstep drivers
//!   recoverable bit-exactly as the zero-delay degenerate case.
//!
//! # Example: serve two stations for one round
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use splitbeam::config::{CompressionLevel, SplitBeamConfig};
//! use splitbeam::model::SplitBeamModel;
//! use splitbeam_serve::server::ApServer;
//! use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
//! use wifi_phy::ofdm::{Bandwidth, MimoConfig};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let config = SplitBeamConfig::new(
//!     MimoConfig::symmetric(2, Bandwidth::Mhz20),
//!     CompressionLevel::OneEighth,
//! );
//! let model = SplitBeamModel::new(config, &mut rng);
//! let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
//!
//! let mut server = ApServer::new();
//! let key = server.register_model(model.clone());
//! for id in 0..2u64 {
//!     server.register_station(id, key, 4).unwrap();
//!     let csi: Vec<f32> = channel
//!         .sample(&mut rng)
//!         .csi_real_vector(0)
//!         .into_iter()
//!         .map(|v| v as f32)
//!         .collect();
//!     let payload = model.compress_quantized(&csi, 4).unwrap();
//!     let frame = splitbeam::wire::encode_feedback(&payload).unwrap();
//!     server.ingest_wire(id, &frame).unwrap();
//! }
//! let summary = server.process_round().unwrap();
//! assert_eq!(summary.served, 2);
//! // Flat real-interleaved V̂ per station; matrices materialize per group.
//! assert_eq!(server.feedback_of(0).unwrap().len(), 224);
//! assert_eq!(server.feedback_matrices_of(0).unwrap().len(), 56);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod driver;
pub mod event;
pub mod fleet;
pub mod ring;
pub mod server;
pub mod session;
pub mod shard;
pub mod slab;
pub mod timing;

pub use driver::StreamServing;
pub use event::{build_event_driver, EventConfig, EventDriver};
pub use fleet::{Fleet, FleetConfig, FleetRoundSummary, FleetStats};
pub use ring::Ring;
pub use server::{ApServer, HealthPolicy, RoundSummary};
pub use session::{SessionHealth, StationId, StationSession};
pub use shard::{env_shards, ShardRoundStats, ShardedApServer, ShardedRoundSummary};
pub use slab::{SessionHandle, SessionSlab};
pub use timing::{DeadlinePolicy, FrameClass, FrameStamp, RoundDelayStats};

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The station id is not registered.
    UnknownStation(StationId),
    /// The model key does not name a registered model.
    UnknownModel(usize),
    /// The station id is already registered.
    DuplicateStation(StationId),
    /// Registration rejected: the server is at its station capacity
    /// (station id, configured capacity).
    CapacityExceeded(StationId, usize),
    /// A wire frame failed to decode, or its payload does not match the
    /// station's model.
    Codec(String),
    /// A wire frame from this station failed its CRC-32 integrity check: the
    /// bytes were damaged on the air. The frame is dropped and counted against
    /// the station's health, never decoded into plausible garbage.
    Corrupt(StationId, String),
    /// A sequenced frame re-delivered a sequence number already pending for
    /// this round (station id, sequence number); the duplicate is suppressed.
    DuplicateFrame(StationId, u16),
    /// The station is quarantined after repeated corrupt frames; its traffic
    /// is rejected until the quarantine expires.
    Quarantined(StationId),
    /// Streaming ingest rejected a frame because the shard's bounded ring is
    /// full (station id, ring capacity). The frame is dropped at the ingest
    /// edge instead of silently overwriting queued feedback.
    Backpressure(StationId, usize),
    /// Tail reconstruction failed.
    Model(String),
    /// A station has no reconstructed feedback yet.
    NoFeedback(StationId),
    /// The MU-MIMO link check failed.
    Link(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownStation(id) => write!(f, "unknown station {id}"),
            ServeError::UnknownModel(key) => write!(f, "unknown model key {key}"),
            ServeError::DuplicateStation(id) => write!(f, "station {id} already registered"),
            ServeError::CapacityExceeded(id, cap) => {
                write!(f, "station {id} rejected: server is at capacity {cap}")
            }
            ServeError::Codec(msg) => write!(f, "wire codec error: {msg}"),
            ServeError::Corrupt(id, msg) => {
                write!(f, "corrupt frame from station {id}: {msg}")
            }
            ServeError::DuplicateFrame(id, seq) => {
                write!(f, "duplicate frame seq {seq} from station {id}")
            }
            ServeError::Quarantined(id) => write!(f, "station {id} is quarantined"),
            ServeError::Backpressure(id, cap) => {
                write!(f, "station {id} stream ring is full (capacity {cap})")
            }
            ServeError::Model(msg) => write!(f, "tail reconstruction error: {msg}"),
            ServeError::NoFeedback(id) => write!(f, "station {id} has no feedback yet"),
            ServeError::Link(msg) => write!(f, "link check error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
