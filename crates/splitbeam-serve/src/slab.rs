//! Generational slab session store with an intrusive idle-LRU list.
//!
//! The serving core used to keep sessions in an ordered map, which made
//! idle eviction a full `O(sessions)` scan every round and scattered
//! sessions across the heap. At fleet scale (100k+ concurrent sessions per
//! AP) both costs dominate the round close. This store replaces the map
//! with:
//!
//! * a **dense slot vector**: sessions live contiguously; freed slots go on
//!   a free list and are reused, and each reuse bumps a generation counter
//!   so stale [`SessionHandle`]s can never resolve to a new tenant;
//! * an **ordered id index** (`BTreeMap<StationId, u32>`): every
//!   deterministic-order path — batch id collection, fresh-station listing,
//!   the public `sessions()` iterator — walks [`SessionSlab::values`] in
//!   ascending station-id order, bit-identical to the old map iteration;
//! * an **intrusive idle-LRU list** threaded through the slots, ordered by
//!   each session's last-activity round. Serving a station moves it to the
//!   hot end ([`SessionSlab::touch`]); [`SessionSlab::evict_idle`] walks
//!   from the cold end and stops at the first survivor, so eviction costs
//!   `O(evicted)`, not `O(sessions)`.
//!
//! Order-independent per-session passes (health bookkeeping, pending-expiry,
//! min/count folds) use [`SessionSlab::values_unordered_mut`], which walks
//! slots densely for cache locality; every path whose iteration order can
//! reach an output uses the id-ordered view (pinned repo-wide by the
//! `serve-unordered-map` lint rule).

use crate::session::{StationId, StationSession};
use std::collections::BTreeMap;

/// Sentinel link value for "no slot".
const NIL: u32 = u32::MAX;

/// A generation-checked reference to a slot. Stays valid until the station
/// it names is removed; resolving it after the slot was reused returns
/// `None` instead of the new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHandle {
    index: u32,
    generation: u32,
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    /// LRU neighbours when occupied (`prev` = colder); free-list link via
    /// `next` when free.
    prev: u32,
    next: u32,
    session: Option<StationSession>,
}

/// Dense generational session store. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct SessionSlab {
    slots: Vec<Slot>,
    by_id: BTreeMap<StationId, u32>,
    free_head: u32,
    /// Coldest (least recently active) end of the LRU list.
    lru_head: u32,
    /// Hottest end of the LRU list.
    lru_tail: u32,
}

impl Default for SessionSlab {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionSlab {
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            by_id: BTreeMap::new(),
            free_head: NIL,
            lru_head: NIL,
            lru_tail: NIL,
        }
    }

    /// A slab whose slot vector is pre-sized for `sessions` stations.
    pub fn with_capacity(sessions: usize) -> Self {
        let mut slab = Self::new();
        slab.slots.reserve(sessions);
        slab
    }

    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    pub fn contains(&self, id: StationId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The round the LRU list orders by: the station's last served round,
    /// or its join round while it has never been served — exactly the
    /// quantity [`StationSession::idle_rounds`] measures from.
    fn activity_round(session: &StationSession) -> u64 {
        session
            .last_round()
            .unwrap_or_else(|| session.joined_round())
    }

    fn session_at(&self, index: u32) -> Option<&StationSession> {
        self.slots[index as usize].session.as_ref()
    }

    /// Inserts `session` under its own station id, placing it in the LRU
    /// list by its activity round. Returns `Err` with the session when the
    /// id is already present (the caller validates first, so this is a
    /// defensive contract rather than an expected path).
    // The fat Err is the point: the rejected session must ride back to the
    // caller for restore, and boxing a cold failure path buys nothing.
    #[allow(clippy::result_large_err)]
    pub fn insert(&mut self, session: StationSession) -> Result<SessionHandle, StationSession> {
        let id = session.id();
        if self.by_id.contains_key(&id) {
            return Err(session);
        }
        let index = if self.free_head != NIL {
            let index = self.free_head;
            self.free_head = self.slots[index as usize].next;
            self.slots[index as usize].session = Some(session);
            index
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                prev: NIL,
                next: NIL,
                session: Some(session),
            });
            index
        };
        self.by_id.insert(id, index);
        self.lru_insert_sorted(index);
        Ok(SessionHandle {
            index,
            generation: self.slots[index as usize].generation,
        })
    }

    /// Removes and returns the session for `id`, freeing its slot.
    pub fn remove(&mut self, id: StationId) -> Option<StationSession> {
        let index = self.by_id.remove(&id)?;
        self.lru_unlink(index);
        let slot = &mut self.slots[index as usize];
        let session = slot.session.take();
        slot.generation = slot.generation.wrapping_add(1);
        slot.prev = NIL;
        slot.next = self.free_head;
        self.free_head = index;
        session
    }

    pub fn get(&self, id: StationId) -> Option<&StationSession> {
        self.by_id.get(&id).and_then(|&i| self.session_at(i))
    }

    pub fn get_mut(&mut self, id: StationId) -> Option<&mut StationSession> {
        let index = *self.by_id.get(&id)?;
        self.slots[index as usize].session.as_mut()
    }

    /// The current handle for `id`.
    pub fn handle(&self, id: StationId) -> Option<SessionHandle> {
        let index = *self.by_id.get(&id)?;
        Some(SessionHandle {
            index,
            generation: self.slots[index as usize].generation,
        })
    }

    /// Resolves a handle, rejecting it once the slot has been reused.
    pub fn get_by_handle(&self, handle: SessionHandle) -> Option<&StationSession> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.session.as_ref()
    }

    /// Sessions in ascending station-id order — the deterministic view every
    /// order-sensitive path iterates.
    pub fn values(&self) -> impl Iterator<Item = &StationSession> {
        self.by_id.values().filter_map(move |&i| self.session_at(i))
    }

    /// `(id, session)` pairs in ascending station-id order.
    pub fn iter(&self) -> impl Iterator<Item = (StationId, &StationSession)> {
        self.by_id
            .iter()
            .filter_map(move |(&id, &i)| self.session_at(i).map(|s| (id, s)))
    }

    /// Mutable walk in dense slot order — **not** station-id order. Only for
    /// per-session passes whose effect is independent of visit order
    /// (commutative counter folds, min/count reductions); every path whose
    /// iteration order can reach an output must use [`Self::values`].
    pub fn values_unordered_mut(&mut self) -> impl Iterator<Item = &mut StationSession> {
        self.slots.iter_mut().filter_map(|s| s.session.as_mut())
    }

    /// Immutable dense walk; same order caveat as
    /// [`Self::values_unordered_mut`].
    pub fn values_unordered(&self) -> impl Iterator<Item = &StationSession> {
        self.slots.iter().filter_map(|s| s.session.as_ref())
    }

    /// Moves `id` to the hot end of the LRU list. Call after serving a
    /// station (its activity round just became the current round, which is
    /// maximal, so a plain tail append keeps the list sorted).
    pub fn touch(&mut self, id: StationId) {
        if let Some(&index) = self.by_id.get(&id) {
            self.lru_unlink(index);
            self.lru_push_tail(index);
        }
    }

    /// Evicts every session idle for more than `max_idle_rounds` as of
    /// `closed_round`, returning how many were evicted. The LRU list is
    /// sorted by activity round, so the evictable sessions form a prefix at
    /// the cold end and the walk stops at the first survivor: `O(evicted)`,
    /// independent of the session count.
    pub fn evict_idle(&mut self, closed_round: u64, max_idle_rounds: u64) -> usize {
        let mut evicted = 0;
        while self.lru_head != NIL {
            let index = self.lru_head;
            let Some(session) = self.session_at(index) else {
                break;
            };
            if session.idle_rounds(closed_round) <= max_idle_rounds {
                break;
            }
            let id = session.id();
            self.remove(id);
            evicted += 1;
        }
        evicted
    }

    fn lru_unlink(&mut self, index: u32) {
        let (prev, next) = {
            let slot = &self.slots[index as usize];
            (slot.prev, slot.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.lru_head == index {
            self.lru_head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.lru_tail == index {
            self.lru_tail = prev;
        }
        let slot = &mut self.slots[index as usize];
        slot.prev = NIL;
        slot.next = NIL;
    }

    fn lru_push_tail(&mut self, index: u32) {
        let tail = self.lru_tail;
        self.slots[index as usize].prev = tail;
        self.slots[index as usize].next = NIL;
        if tail != NIL {
            self.slots[tail as usize].next = index;
        } else {
            self.lru_head = index;
        }
        self.lru_tail = index;
    }

    /// Inserts `index` into the LRU list keeping it sorted by activity
    /// round. Fresh registrations join at the current round (maximal key) so
    /// the walk from the tail is `O(1)`; only an adopted roaming session
    /// with older activity walks further.
    fn lru_insert_sorted(&mut self, index: u32) {
        let key = match self.session_at(index) {
            Some(session) => Self::activity_round(session),
            None => return,
        };
        let mut after = self.lru_tail;
        while after != NIL {
            let after_key = match self.session_at(after) {
                Some(session) => Self::activity_round(session),
                None => break,
            };
            if after_key <= key {
                break;
            }
            after = self.slots[after as usize].prev;
        }
        if after == NIL {
            // Coldest: push at the head.
            let head = self.lru_head;
            self.slots[index as usize].prev = NIL;
            self.slots[index as usize].next = head;
            if head != NIL {
                self.slots[head as usize].prev = index;
            } else {
                self.lru_tail = index;
            }
            self.lru_head = index;
        } else if after == self.lru_tail {
            self.lru_push_tail(index);
        } else {
            let next = self.slots[after as usize].next;
            self.slots[index as usize].prev = after;
            self.slots[index as usize].next = next;
            self.slots[after as usize].next = index;
            self.slots[next as usize].prev = index;
        }
    }
}

impl std::ops::Index<&StationId> for SessionSlab {
    type Output = StationSession;

    /// Panics when `id` is not registered — the same contract map indexing
    /// had. Round-close paths only index ids they just collected from the
    /// slab itself.
    fn index(&self, id: &StationId) -> &StationSession {
        match self.get(*id) {
            Some(session) => session,
            None => panic!("station {id} is not registered in the session slab"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(id: StationId, joined_round: u64) -> StationSession {
        StationSession::new(id, 0, 4, joined_round)
    }

    fn ids(slab: &SessionSlab) -> Vec<StationId> {
        slab.values().map(|s| s.id()).collect()
    }

    #[test]
    fn insert_get_remove_and_duplicate_rejection() {
        let mut slab = SessionSlab::with_capacity(4);
        assert!(slab.is_empty());
        let h = slab.insert(session(7, 0)).unwrap();
        assert!(slab.insert(session(7, 1)).is_err(), "duplicate id");
        assert_eq!(slab.len(), 1);
        assert!(slab.contains(7));
        assert_eq!(slab.get(7).map(|s| s.id()), Some(7));
        assert_eq!(slab.get_by_handle(h).map(|s| s.id()), Some(7));
        assert_eq!(slab[&7].id(), 7);
        let removed = slab.remove(7).unwrap();
        assert_eq!(removed.id(), 7);
        assert_eq!(slab.remove(7).map(|s| s.id()), None);
        assert!(slab.get(7).is_none());
        // Generation check: the handle dies with the tenant even though the
        // slot is immediately reused.
        slab.insert(session(9, 0)).unwrap();
        assert!(slab.get_by_handle(h).is_none());
        assert_eq!(
            slab.handle(9)
                .and_then(|h| slab.get_by_handle(h))
                .map(|s| s.id()),
            Some(9)
        );
    }

    #[test]
    fn values_iterate_in_ascending_id_order_despite_slot_churn() {
        let mut slab = SessionSlab::new();
        for id in [42, 3, 17, 99, 8] {
            slab.insert(session(id, 0)).unwrap();
        }
        assert_eq!(ids(&slab), vec![3, 8, 17, 42, 99]);
        // Free slot 0 (id 42) and reuse it for a small id: id order holds.
        slab.remove(42);
        slab.insert(session(1, 0)).unwrap();
        assert_eq!(ids(&slab), vec![1, 3, 8, 17, 99]);
        assert_eq!(
            slab.iter().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![1, 3, 8, 17, 99]
        );
        // The dense walk visits everyone exactly once, order unspecified.
        let mut dense: Vec<StationId> = slab.values_unordered().map(|s| s.id()).collect();
        dense.sort_unstable();
        assert_eq!(dense, vec![1, 3, 8, 17, 99]);
    }

    #[test]
    fn eviction_walks_only_the_cold_prefix() {
        let mut slab = SessionSlab::new();
        for id in 0..6u64 {
            slab.insert(session(id, 0)).unwrap();
        }
        // Serve 4 and 1 at round 5: they move to the hot end.
        for id in [4u64, 1] {
            slab.get_mut(id).unwrap().store_feedback(&[0.0], 5);
            slab.touch(id);
        }
        // As of round 8 with a 5-round budget, only the never-served four
        // (idle 8 > 5) go; 4 and 1 (idle 3) stay.
        assert_eq!(slab.evict_idle(8, 5), 4);
        assert_eq!(ids(&slab), vec![1, 4]);
        // Nothing left to evict; the walk stops at the first survivor.
        assert_eq!(slab.evict_idle(8, 5), 0);
        // Re-registration after eviction works and lands hot.
        slab.insert(session(0, 8)).unwrap();
        assert_eq!(slab.evict_idle(8, 5), 0);
        assert_eq!(ids(&slab), vec![0, 1, 4]);
    }

    #[test]
    fn sorted_insert_places_stale_adoptions_by_activity() {
        let mut slab = SessionSlab::new();
        let mut fresh = session(10, 6);
        fresh.store_feedback(&[0.0], 6);
        slab.insert(fresh).unwrap();
        // An adopted session whose last activity is far older must sort
        // colder than the resident, so eviction sees it first.
        let stale = session(20, 1);
        slab.insert(stale).unwrap();
        assert_eq!(slab.evict_idle(7, 3), 1, "stale adoptee evicts");
        assert_eq!(ids(&slab), vec![10]);
    }
}
