//! Correctness anchors of the low-precision tail serving path.
//!
//! Two guarantees, each checked under both `SPLITBEAM_KERNEL` backends:
//!
//! * **f32 is untouched** — with `SPLITBEAM_TAIL_WEIGHTS=f32` (and by
//!   default), every serving flavor reproduces the direct
//!   [`SplitBeamModel::reconstruct_quantized`] output bit-for-bit, i.e. the
//!   serving results of the pre-quantization servers.
//! * **int8 is one answer** — under [`TailWeights::Int8`], batched, serial,
//!   sharded and streaming closes all produce bit-identical feedback, equal
//!   to the scalar int8 reference reconstruction, regardless of which SIMD
//!   tier actually ran.
//!
//! The kernel override and the environment are process-global, so every test
//! serializes on one mutex and restores defaults before returning.

use mimo_math::kernel::{avx2_fma_available, set_kernel, KernelChoice};
use mimo_math::Int8Kernel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam::quantization::QuantizedFeedback;
use splitbeam::{QuantizedTail, TailWeights};
use splitbeam_serve::server::ApServer;
use splitbeam_serve::ShardedApServer;
use std::sync::Mutex;
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the kernel pinned to `choice`, restoring default dispatch
/// afterwards (also on panic, via a drop guard).
fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(None);
            std::env::remove_var("SPLITBEAM_TAIL_WEIGHTS");
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = Restore;
    set_kernel(Some(choice));
    f()
}

fn kernel_choices() -> Vec<KernelChoice> {
    let mut choices = vec![KernelChoice::Scalar];
    if avx2_fma_available() {
        choices.push(KernelChoice::Auto);
    }
    choices
}

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

/// One station's traffic: the validated payload (for direct reconstruction)
/// and its wire frame (for server ingest).
fn station_traffic(model: &SplitBeamModel, seed: u64, bits: u8) -> (QuantizedFeedback, Vec<u8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let csi: Vec<f32> = channel
        .sample(&mut rng)
        .csi_real_vector(0)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let payload = model.compress_quantized(&csi, bits).unwrap();
    let frame = splitbeam::wire::encode_feedback(&payload).unwrap();
    (payload, frame)
}

#[test]
fn f32_knob_serving_reproduces_direct_reconstruction_under_both_kernels() {
    let m = model(51);
    let stations = 6u64;
    let bits = 6u8;
    for choice in kernel_choices() {
        with_kernel(choice, || {
            // The env knob spelled out, as CI sets it; `ApServer::new` reads it.
            std::env::set_var("SPLITBEAM_TAIL_WEIGHTS", "f32");
            let mut batched = ApServer::new();
            let mut serial = ApServer::new();
            assert_eq!(batched.tail_weights(), TailWeights::F32);
            let bkey = batched.register_model(m.clone());
            let skey = serial.register_model(m.clone());
            let mut expected = Vec::new();
            for id in 0..stations {
                batched.register_station(id, bkey, bits).unwrap();
                serial.register_station(id, skey, bits).unwrap();
                let (payload, frame) = station_traffic(&m, 300 + id, bits);
                batched.ingest_wire(id, &frame).unwrap();
                serial.ingest_wire(id, &frame).unwrap();
                // The pre-serving-layer ground truth: the model's own unfused
                // reconstruction of the same payload.
                expected.push(m.reconstruct_quantized(&payload).unwrap());
            }
            batched.process_round().unwrap();
            serial.process_round_serial().unwrap();
            for id in 0..stations {
                let want = expected[id as usize].as_slice();
                assert_eq!(
                    batched.feedback_of(id),
                    Some(want),
                    "kernel {choice:?}, station {id}: f32 batched serving must \
                     be bit-exact with direct model reconstruction"
                );
                assert_eq!(
                    serial.feedback_of(id),
                    Some(want),
                    "kernel {choice:?}, station {id}: f32 serial serving must \
                     be bit-exact with direct model reconstruction"
                );
            }
        });
    }
}

#[test]
fn int8_serving_is_bit_exact_across_all_close_paths() {
    let m = model(53);
    let stations = 7u64;
    let bits = 7u8;
    // Traffic is generated ONCE — the head compression runs the f32 kernel,
    // which is deterministic per backend but not identical across backends,
    // so the same frame bytes must be replayed under every kernel pin. The
    // scalar int8 reference of those payloads is what every backend and every
    // serving flavor must reproduce bit-for-bit.
    let reference_tail = QuantizedTail::bind(&m);
    let mut frames = Vec::new();
    let mut reference = Vec::new();
    for id in 0..stations {
        let (payload, frame) = station_traffic(&m, 400 + id, bits);
        frames.push(frame);
        reference.push(
            reference_tail
                .reconstruct_quantized(&payload, Int8Kernel::Scalar)
                .unwrap(),
        );
    }
    for choice in kernel_choices() {
        with_kernel(choice, || {
            std::env::set_var("SPLITBEAM_TAIL_WEIGHTS", "int8");
            let mut batched = ApServer::new();
            assert_eq!(batched.tail_weights(), TailWeights::Int8);
            let mut serial = ApServer::new();
            let mut streaming = ApServer::new();
            streaming.set_streaming(true);
            let mut sharded = ShardedApServer::new(3);
            assert_eq!(sharded.tail_weights(), TailWeights::Int8);
            let bk = batched.register_model(m.clone());
            let sk = serial.register_model(m.clone());
            let tk = streaming.register_model(m.clone());
            let hk = sharded.register_model(m.clone());
            for id in 0..stations {
                batched.register_station(id, bk, bits).unwrap();
                serial.register_station(id, sk, bits).unwrap();
                streaming.register_station(id, tk, bits).unwrap();
                sharded.register_station(id, hk, bits).unwrap();
                let frame = &frames[id as usize];
                batched.ingest_wire(id, frame).unwrap();
                serial.ingest_wire(id, frame).unwrap();
                streaming.ingest_wire(id, frame).unwrap();
                sharded.ingest_wire(id, frame).unwrap();
            }
            batched.process_round().unwrap();
            serial.process_round_serial().unwrap();
            streaming.process_round_streaming(None).unwrap();
            sharded.process_round().unwrap();
            for id in 0..stations {
                let want = reference[id as usize].as_slice();
                for (name, got) in [
                    ("batched", batched.feedback_of(id)),
                    ("serial", serial.feedback_of(id)),
                    ("streaming", streaming.feedback_of(id)),
                    ("sharded", sharded.feedback_of(id)),
                ] {
                    assert_eq!(
                        got,
                        Some(want),
                        "kernel {choice:?}, station {id}: int8 {name} serving \
                         must be bit-exact with the scalar int8 reference"
                    );
                }
            }
        });
    }
}

#[test]
fn tail_weights_can_be_switched_at_round_boundaries() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let m = model(57);
    let mut server = ApServer::new();
    server.set_tail_weights(TailWeights::F32);
    let key = server.register_model(m.clone());
    server.register_station(0, key, 8).unwrap();
    let (payload, frame) = station_traffic(&m, 500, 8);
    server.ingest_wire(0, &frame).unwrap();
    server.process_round().unwrap();
    let f32_out = server.feedback_of(0).unwrap().to_vec();
    assert_eq!(f32_out, m.reconstruct_quantized(&payload).unwrap());
    // Flip to int8 and serve the same payload again: the output now matches
    // the bound quantized tail instead.
    server.set_tail_weights(TailWeights::Int8);
    server.ingest_wire(0, &frame).unwrap();
    server.process_round().unwrap();
    let int8_out = server.feedback_of(0).unwrap().to_vec();
    let tail = server.quantized_tail(key).unwrap();
    let ik = mimo_math::kernel::int8::selected_int8();
    assert_eq!(int8_out, tail.reconstruct_quantized(&payload, ik).unwrap());
}
