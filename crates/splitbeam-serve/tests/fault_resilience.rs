//! Robustness suite for the fault-injection layer: a deterministic fuzz
//! harness (seeded shims RNG, no cargo-fuzz) over the wire codec and every
//! server flavor's ingest path, plus the two determinism anchors the fault
//! work must preserve:
//!
//! * **zero-fault parity** — an event driver whose `FaultInjector` is
//!   configured but inactive (and whose retry machinery is armed) stays
//!   bit-exact with the legacy lockstep/batched/serial/sharded drivers,
//! * **fault-plan determinism** — the same seed and the same fault plan
//!   produce identical `RoundSummary` streams across batched/serial/sharded
//!   {1, 4} flavors and both `SPLITBEAM_KERNEL` backends.
//!
//! The kernel override is process-global, so kernel-pinning tests serialize
//! on one mutex and restore default dispatch before returning (same pattern
//! as `event_parity`).

use mimo_math::kernel::{avx2_fma_available, set_kernel, KernelChoice};
use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam::wire;
use splitbeam::SplitBeamError;
use splitbeam_hwsim::fault::FaultConfig;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, RoundServing, ServeMode,
    SimConfig,
};
use splitbeam_serve::event::{build_event_driver, build_sharded_event_driver, EventConfig};
use splitbeam_serve::{RoundSummary, ServeError};
use std::sync::Mutex;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(None);
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = Restore;
    set_kernel(Some(choice));
    f()
}

fn kernel_choices() -> Vec<KernelChoice> {
    let mut choices = vec![KernelChoice::Scalar];
    if avx2_fma_available() {
        choices.push(KernelChoice::Auto);
    }
    choices
}

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

/// Fuzz iteration budget: ≥ 100k frames by default, tunable for quick local
/// runs or CI via `SPLITBEAM_FUZZ_FRAMES`.
fn fuzz_budget() -> usize {
    std::env::var("SPLITBEAM_FUZZ_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// One fuzzed frame: arbitrary bytes, or a valid v2 frame put through
/// truncation, bit flips, or header mutation.
fn mutate_frame(rng: &mut ChaCha8Rng, valid: &[Vec<u8>]) -> Vec<u8> {
    match rng.gen_range(0u32..4) {
        // Arbitrary bytes, length 0..192.
        0 => {
            let len = rng.gen_range(0usize..192);
            let mut frame = vec![0u8; len];
            rng.fill_bytes(&mut frame);
            frame
        }
        // Truncation (possibly to zero) of a valid frame.
        1 => {
            let base = &valid[rng.gen_range(0..valid.len())];
            let len = rng.gen_range(0..base.len());
            base[..len].to_vec()
        }
        // 1..=8 random bit flips anywhere in a valid frame.
        2 => {
            let mut frame = valid[rng.gen_range(0..valid.len())].clone();
            for _ in 0..rng.gen_range(1usize..=8) {
                let bit = rng.gen_range(0..frame.len() * 8);
                frame[bit / 8] ^= 1 << (bit % 8);
            }
            frame
        }
        // Header-targeted mutation: rewrite 1..=4 of the first 14 bytes.
        _ => {
            let mut frame = valid[rng.gen_range(0..valid.len())].clone();
            for _ in 0..rng.gen_range(1usize..=4) {
                let idx = rng.gen_range(0..frame.len().min(14));
                frame[idx] = rng.gen_range(0u32..256) as u8;
            }
            frame
        }
    }
}

/// ≥ 100k deterministic mutated/arbitrary frames through `decode_feedback`
/// and `ingest_wire` on every server flavor: no panics, every corrupted
/// CRC-bearing (v2) frame is rejected, and the error taxonomy stays within
/// the documented `SplitBeamError`/`ServeError` variants.
#[test]
fn fuzz_decode_and_ingest_survive_hostile_frames() {
    let m = model(606);
    let mut rng = ChaCha8Rng::seed_from_u64(0x0f5a_2e11);
    // A pool of valid frames (varied widths) for mutation to start from.
    let mut valid = Vec::new();
    for (seed, bits) in [(1u64, 4u8), (2, 6), (3, 8), (4, 12)] {
        let mut crng = ChaCha8Rng::seed_from_u64(seed);
        let channel = wifi_phy::channel::ChannelModel::new(
            wifi_phy::channel::EnvironmentProfile::e1(),
            Bandwidth::Mhz20,
            2,
            1,
            1,
        );
        let csi: Vec<f32> = channel
            .sample(&mut crng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = m.compress_quantized(&csi, bits).unwrap();
        valid.push(wire::encode_feedback(&payload).unwrap());
    }

    // Every server flavor the repo ships: single-shard batched/serial share
    // one ingest path, plus sharded at 1 and 4.
    let mut flat = build_server(m.clone(), 2, 8);
    let mut sharded1 = build_sharded_server(m.clone(), 2, 8, 1);
    let mut sharded4 = build_sharded_server(m.clone(), 2, 8, 4);

    let budget = fuzz_budget();
    let mut rejected_corrupt = 0usize;
    let mut decoded_ok = 0usize;
    for i in 0..budget {
        let frame = mutate_frame(&mut rng, &valid);
        let is_pristine = valid.iter().any(|v| v == &frame);

        // Decode taxonomy: a damaged v2 frame must never decode.
        match wire::decode_feedback(&frame) {
            Ok(_) => {
                decoded_ok += 1;
                assert!(
                    frame.first() != Some(&0xB5) || is_pristine,
                    "corrupted CRC-bearing frame decoded at iteration {i}: {frame:?}"
                );
            }
            Err(SplitBeamError::CorruptFrame(_)) => {
                rejected_corrupt += 1;
                assert_eq!(
                    frame.first(),
                    Some(&0xB5),
                    "CorruptFrame is reserved for CRC-bearing v2 frames"
                );
            }
            Err(SplitBeamError::DimensionMismatch(_)) => {}
            Err(other) => panic!("unexpected decode error class at iteration {i}: {other}"),
        }

        // Ingest on every flavor: must not panic, must stay within the serve
        // error taxonomy, and must keep the session machinery alive.
        let id = (i % 2) as u64;
        for result in [
            flat.ingest_wire(id, &frame),
            RoundServing::ingest_wire(&mut sharded1, id, &frame),
            RoundServing::ingest_wire(&mut sharded4, id, &frame),
        ] {
            match result {
                Ok(_) => {}
                Err(
                    ServeError::Corrupt(_, _)
                    | ServeError::Codec(_)
                    | ServeError::Quarantined(_)
                    | ServeError::DuplicateFrame(_, _),
                ) => {}
                Err(other) => panic!("unexpected ingest error at iteration {i}: {other}"),
            }
        }
        // Close rounds periodically so quarantine windows open *and* expire
        // under fire.
        if i % 257 == 0 {
            flat.process_round().unwrap();
            RoundServing::close_round(&mut sharded1, ServeMode::Batched).unwrap();
            RoundServing::close_round(&mut sharded4, ServeMode::Batched).unwrap();
        }
    }
    assert!(
        rejected_corrupt > budget / 20,
        "the mutation mix must exercise CRC rejection ({rejected_corrupt}/{budget})"
    );
    assert!(decoded_ok > 0, "pristine frames in the mix must decode");

    // The servers are still serviceable after the bombardment: a clean frame
    // is either accepted or (legitimately) refused because the fuzz run
    // quarantined the station.
    for result in [
        flat.ingest_wire(0, &valid[0]),
        RoundServing::ingest_wire(&mut sharded1, 0, &valid[0]),
        RoundServing::ingest_wire(&mut sharded4, 0, &valid[0]),
    ] {
        assert!(
            matches!(result, Ok(_) | Err(ServeError::Quarantined(_))),
            "server no longer serviceable after fuzzing: {result:?}"
        );
    }
}

/// The fault-relevant projection of a summary stream, for comparison across
/// flavors whose non-fault bookkeeping (e.g. eviction counters) may
/// legitimately differ in representation.
#[allow(clippy::type_complexity)]
fn fault_profile(
    summaries: &[RoundSummary],
) -> Vec<(u64, usize, usize, usize, usize, usize, usize, usize)> {
    summaries
        .iter()
        .map(|s| {
            (
                s.round,
                s.served,
                s.stale,
                s.lost,
                s.corrupt,
                s.retransmitted,
                s.stale_served,
                s.on_time + s.late + s.expired,
            )
        })
        .collect()
}

/// Same seed + same fault plan → identical `RoundSummary` streams across
/// batched/serial/sharded {1, 4} and both kernel backends.
#[test]
fn fault_plan_is_deterministic_across_flavors_and_kernels() {
    let m = model(707);
    let cfg = SimConfig {
        stations: 6,
        rounds: 5,
        bits_per_value: 6,
        drop_every: 0,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(708);
    let traffic = generate_traffic(&cfg, &m, &mut rng);
    let event_cfg = EventConfig {
        feedback_rate_mbps: Some(24.0),
        seed: 909,
        faults: FaultConfig {
            loss: 0.2,
            corrupt: 0.1,
            duplicate: 0.05,
            burst: Some(splitbeam_hwsim::fault::GilbertElliott {
                p_enter_bad: 0.1,
                p_exit_bad: 0.4,
                loss_good: 0.01,
                loss_bad: 0.6,
            }),
            ..FaultConfig::none()
        },
        max_retries: 2,
        retry_backoff_ns: 50_000,
        ..EventConfig::lockstep()
    };

    let mut reference: Option<Vec<_>> = None;
    for choice in kernel_choices() {
        with_kernel(choice, || {
            let mut batched =
                build_event_driver(m.clone(), cfg.stations, cfg.bits_per_value, event_cfg, None);
            let got_batched = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
            let mut serial =
                build_event_driver(m.clone(), cfg.stations, cfg.bits_per_value, event_cfg, None);
            let got_serial = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
            // Batched and serial closes are fully bit-exact under faults.
            assert_eq!(got_batched, got_serial, "batched vs serial, {choice:?}");
            assert_eq!(batched.fault_stats(), serial.fault_stats());

            let profile = fault_profile(&got_batched.summaries);
            for shards in [1usize, 4] {
                let mut sharded = build_sharded_event_driver(
                    m.clone(),
                    cfg.stations,
                    cfg.bits_per_value,
                    shards,
                    event_cfg,
                    None,
                );
                let got = serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
                assert_eq!(
                    fault_profile(&got.summaries),
                    profile,
                    "{shards} shards vs single-shard, {choice:?}"
                );
                assert_eq!(
                    sharded.fault_stats(),
                    batched.fault_stats(),
                    "{shards} shards fault stats, {choice:?}"
                );
            }
            // And across kernels the whole stream is identical.
            match &reference {
                Some(want) => assert_eq!(&profile, want, "kernel {choice:?} diverged"),
                None => reference = Some(profile),
            }
        });
    }
    let profile = reference.expect("at least the scalar kernel ran");
    let injected: usize = profile.iter().map(|row| row.3 + row.4).sum();
    assert!(injected > 0, "the fault plan must actually disrupt the run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Zero-fault parity: an event driver with the fault machinery *armed*
    /// (retries configured, injector constructed) but a `FaultConfig::none()`
    /// plan is bit-exact with the PR 5 lockstep drivers — legacy batched,
    /// legacy serial, and sharded {1, 4} — under both kernel backends.
    #[test]
    fn prop_zero_fault_injector_is_bit_exact_with_pr5_drivers(
        seed in 0u64..1000,
        bits in 2u8..=12,
        drop_every in 0usize..5,
        max_retries in 0u32..4,
    ) {
        let m = model(seed.wrapping_add(811));
        let cfg = SimConfig {
            stations: 5,
            rounds: 3,
            bits_per_value: bits,
            drop_every,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let event_cfg = EventConfig {
            faults: FaultConfig::none(),
            max_retries,
            retry_backoff_ns: 100_000,
            seed,
            ..EventConfig::lockstep()
        };
        for choice in kernel_choices() {
            with_kernel(choice, || {
                let mut batched = build_server(m.clone(), cfg.stations, bits);
                let want = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
                let mut serial = build_server(m.clone(), cfg.stations, bits);
                let want_serial = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
                prop_assert_eq!(&want, &want_serial);

                let mut event =
                    build_event_driver(m.clone(), cfg.stations, bits, event_cfg, None);
                let got = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
                prop_assert_eq!(&got, &want, "armed-but-inactive injector, {:?}", choice);
                let stats = event.fault_stats();
                prop_assert_eq!(
                    (stats.lost, stats.corrupted, stats.duplicated, stats.delayed),
                    (0, 0, 0, 0)
                );
                for id in 0..traffic.max_station_id {
                    prop_assert_eq!(event.feedback_of(id), batched.feedback_of(id));
                }
                for shards in [1usize, 4] {
                    let mut legacy =
                        build_sharded_server(m.clone(), cfg.stations, bits, shards);
                    let want_sharded =
                        serve_traffic(&mut legacy, &traffic, ServeMode::Batched).unwrap();
                    let mut sharded = build_sharded_event_driver(
                        m.clone(), cfg.stations, bits, shards, event_cfg, None);
                    let got =
                        serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
                    prop_assert_eq!(&got, &want_sharded,
                        "{} shards, {:?}", shards, choice);
                    for id in 0..traffic.max_station_id {
                        prop_assert_eq!(sharded.feedback_of(id), batched.feedback_of(id));
                    }
                }
            });
        }
    }
}
