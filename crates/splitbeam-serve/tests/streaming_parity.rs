//! Correctness anchor of the streaming micro-batch refactor: with lockstep
//! timing and a single watermark per round cadence, streaming serving must
//! reproduce the barrier closes **bit-exactly** — summaries and per-station
//! feedback bytes — under both `SPLITBEAM_KERNEL` backends, at 1 and 4
//! shards, and under both a clean and a lossy/corrupting fault plan. On top
//! of the parity matrix: stalled-shard isolation (a slow shard must not drag
//! other shards' deadline-hit rate under streaming, while the barrier
//! couples everyone), the empty-micro-batch merge regression, ring
//! backpressure, and a genuinely multi-micro-batch round.
//!
//! The kernel override is process-global, so kernel-pinning tests serialize
//! on one mutex and restore the default before returning (the same pattern
//! as the `event_parity` suite).

use mimo_math::kernel::{avx2_fma_available, set_kernel, KernelChoice};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_hwsim::fault::FaultConfig;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, RoundServing, ServeMode,
    SimConfig,
};
use splitbeam_serve::event::{build_event_driver, build_sharded_event_driver, EventConfig};
use splitbeam_serve::server::ApServer;
use splitbeam_serve::timing::FrameStamp;
use splitbeam_serve::{DeadlinePolicy, ServeError, ShardedApServer};
use std::sync::Mutex;
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the kernel pinned to `choice`, restoring default dispatch
/// afterwards (also on panic, via a drop guard).
fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(None);
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = Restore;
    set_kernel(Some(choice));
    f()
}

fn kernel_choices() -> Vec<KernelChoice> {
    let mut choices = vec![KernelChoice::Scalar];
    if avx2_fma_available() {
        choices.push(KernelChoice::Auto);
    }
    choices
}

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let csi: Vec<f32> = channel
        .sample(&mut rng)
        .csi_real_vector(0)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let payload = model.compress_quantized(&csi, bits).unwrap();
    splitbeam::wire::encode_feedback(&payload).unwrap()
}

const SHARD_COUNTS: [usize; 2] = [1, 4];

/// The fault plans the acceptance criteria pin: a clean medium and the
/// PR 6-style lossy plan (loss + corruption + duplication, no extra delay so
/// every retry still lands within the round's watermark horizon).
fn fault_plans() -> [FaultConfig; 2] {
    [
        FaultConfig::none(),
        FaultConfig {
            loss: 0.25,
            corrupt: 0.15,
            duplicate: 0.1,
            ..FaultConfig::none()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For every sampled workload, both kernel backends, both fault plans,
    /// single-shard and {1, 4}-sharded servers: the streaming event driver
    /// (lockstep timing, one watermark per cadence) == the barrier event
    /// driver, bit for bit — full outcome equality plus per-station feedback
    /// bytes.
    #[test]
    fn prop_streaming_close_is_bit_exact_with_barrier(
        seed in 0u64..1000,
        bits in 2u8..=12,
        drop_every in 0usize..6,
    ) {
        let m = model(seed.wrapping_add(911));
        let cfg = SimConfig {
            stations: 6,
            rounds: 3,
            bits_per_value: bits,
            drop_every,
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        for choice in kernel_choices() {
            with_kernel(choice, || {
                for faults in fault_plans() {
                    let mut barrier_cfg = EventConfig::lockstep();
                    barrier_cfg.faults = faults;
                    if faults != FaultConfig::none() {
                        barrier_cfg.max_retries = 2;
                        barrier_cfg.retry_backoff_ns = 100_000;
                    }
                    let mut streaming_cfg = barrier_cfg;
                    streaming_cfg.streaming = true;

                    let mut barrier =
                        build_event_driver(m.clone(), cfg.stations, bits, barrier_cfg, None);
                    let want =
                        serve_traffic(&mut barrier, &traffic, ServeMode::Batched).unwrap();
                    let mut streaming =
                        build_event_driver(m.clone(), cfg.stations, bits, streaming_cfg, None);
                    let got =
                        serve_traffic(&mut streaming, &traffic, ServeMode::Batched).unwrap();
                    prop_assert_eq!(&got, &want,
                        "single shard, {:?}, faults {:?}", choice, faults);
                    for id in 0..traffic.max_station_id {
                        prop_assert_eq!(
                            streaming.feedback_of(id),
                            barrier.feedback_of(id),
                            "station {} feedback, {:?}", id, choice
                        );
                    }

                    for shards in SHARD_COUNTS {
                        let mut barrier = build_sharded_event_driver(
                            m.clone(), cfg.stations, bits, shards, barrier_cfg, None);
                        let want =
                            serve_traffic(&mut barrier, &traffic, ServeMode::Batched).unwrap();
                        let mut streaming = build_sharded_event_driver(
                            m.clone(), cfg.stations, bits, shards, streaming_cfg, None);
                        let got =
                            serve_traffic(&mut streaming, &traffic, ServeMode::Batched).unwrap();
                        prop_assert_eq!(&got, &want,
                            "{} shards, {:?}, faults {:?}", shards, choice, faults);
                        for id in 0..traffic.max_station_id {
                            prop_assert_eq!(
                                streaming.feedback_of(id),
                                barrier.feedback_of(id),
                                "{} shards, station {}, {:?}", shards, id, choice
                            );
                        }
                    }
                }
            });
        }
    }
}

/// The non-event streaming path is the degenerate case too: `serve_traffic`
/// with `ServeMode::Streaming` on a streaming-ingest server equals the
/// batched and serial lockstep drivers bit-exactly.
#[test]
fn plain_streaming_mode_matches_batched_and_serial() {
    let m = model(101);
    let cfg = SimConfig {
        stations: 5,
        rounds: 3,
        bits_per_value: 6,
        drop_every: 3,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    let traffic = generate_traffic(&cfg, &m, &mut rng);
    let mut batched = build_server(m.clone(), cfg.stations, cfg.bits_per_value);
    let want = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
    let mut serial = build_server(m.clone(), cfg.stations, cfg.bits_per_value);
    let want_serial = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
    assert_eq!(want, want_serial);

    let mut streaming = build_server(m.clone(), cfg.stations, cfg.bits_per_value);
    streaming.set_streaming(true);
    let got = serve_traffic(&mut streaming, &traffic, ServeMode::Streaming).unwrap();
    assert_eq!(got, want, "plain streaming must equal the barrier closes");
    for id in 0..traffic.max_station_id {
        assert_eq!(streaming.feedback_of(id), batched.feedback_of(id));
    }

    let mut sharded = build_sharded_server(m, cfg.stations, cfg.bits_per_value, 4);
    sharded.set_streaming(true);
    let got = serve_traffic(&mut sharded, &traffic, ServeMode::Streaming).unwrap();
    assert_eq!(got.total_served(), want.total_served());
    for id in 0..traffic.max_station_id {
        assert_eq!(sharded.feedback_of(id), batched.feedback_of(id));
    }
}

/// The headline property of killing the barrier: a deliberately stalled
/// shard leaves every *other* shard's deadline-hit rate untouched under
/// streaming closes, while the barrier close drags every shard down with
/// the slowest one.
#[test]
fn stalled_shard_does_not_degrade_other_shards_under_streaming() {
    let m = model(201);
    let bits = 6u8;
    let stations = 8u64;
    let policy = DeadlinePolicy::eq7d();
    // 15 ms of close lag on a 10 ms budget + 10 ms grace: stalled reports
    // classify late, not expired.
    let stall_ns = 15_000_000u64;

    let build = |streaming: bool, stall: bool| {
        let mut server = ShardedApServer::new(4);
        let key = server.register_model(m.clone());
        for id in 0..stations {
            server.register_station(id, key, bits).unwrap();
        }
        server.set_streaming(streaming);
        if stall {
            server.set_shard_stall_ns(0, stall_ns);
        }
        for id in 0..stations {
            let frame = station_frame(&m, 4000 + id, bits);
            server
                .ingest_wire_at(id, &frame, FrameStamp::default())
                .unwrap();
        }
        server
    };

    // Barrier, stalled shard 0: the whole round waits for the slowest shard,
    // so every report on every shard pays the 15 ms lag and lands late.
    let mut barrier = build(false, true);
    let summary = barrier.process_round_deadline(policy).unwrap();
    assert_eq!(summary.served, stations as usize);
    assert_eq!(
        (summary.on_time, summary.late),
        (0, stations as usize),
        "the barrier must couple every shard to the stalled one"
    );
    for stats in barrier.shard_round_stats() {
        assert_eq!(stats.on_time, 0);
    }

    // Streaming, stalled shard 0: only shard 0's own reports pay its stall.
    let mut streaming = build(true, true);
    let summary = streaming.finalize_stream_round(Some(policy)).unwrap();
    assert_eq!(summary.served, stations as usize);
    assert_eq!((summary.on_time, summary.late), (6, 2));
    let stats = streaming.shard_round_stats();
    assert_eq!((stats[0].on_time, stats[0].late), (0, 2), "stalled shard");
    for (idx, s) in stats.iter().enumerate().skip(1) {
        assert_eq!((s.on_time, s.late), (2, 0), "healthy shard {idx}");
    }

    // The unstalled streaming run is the reference: healthy shards in the
    // stalled run match it exactly.
    let mut clean = build(true, false);
    let clean_summary = clean.finalize_stream_round(Some(policy)).unwrap();
    assert_eq!(clean_summary.on_time, stations as usize);
    for (idx, s) in clean.shard_round_stats().iter().enumerate().skip(1) {
        assert_eq!(*s, stats[idx]);
    }

    // Feedback bytes are identical across all three runs — lateness is an
    // accounting outcome, not a content change.
    for id in 0..stations {
        assert_eq!(streaming.feedback_of(id), barrier.feedback_of(id));
        assert_eq!(streaming.feedback_of(id), clean.feedback_of(id));
    }
}

/// Satellite regression: shards with zero pending frames (an empty
/// micro-batch round) contribute their true `awaiting_first_report` count —
/// identical to the barrier close — even when other shards micro-closed
/// mid-round. No phantom counts from the incremental fold.
#[test]
fn empty_shard_micro_batches_do_not_inflate_awaiting_counts() {
    let m = model(301);
    let bits = 5u8;
    let policy = DeadlinePolicy::eq7d();

    let build = |streaming: bool| {
        let mut server = ShardedApServer::new(4);
        let key = server.register_model(m.clone());
        for id in 0..8u64 {
            server.register_station(id, key, bits).unwrap();
        }
        server.set_streaming(streaming);
        // Traffic only for shards 0 and 1 (ids 0,1,4,5); shards 2 and 3 stay
        // silent, each holding two never-reported stations.
        for id in [0u64, 1, 4, 5] {
            let frame = station_frame(&m, 5000 + id, bits);
            let stamp = FrameStamp {
                arrival_ns: 1_000_000,
                ..FrameStamp::default()
            };
            server.ingest_wire_at(id, &frame, stamp).unwrap();
        }
        server
    };

    let mut barrier = build(false);
    let want = barrier.process_round_deadline(policy).unwrap();
    assert_eq!(want.awaiting_first_report, 4);
    assert_eq!(want.shards_with_traffic, 2);

    let mut streaming = build(true);
    // Mid-round watermark: arrival 1 ms -> service deadline 11 ms, so the
    // 11 ms watermark (step 1 ms) micro-closes shards 0 and 1; shards 2 and
    // 3 see an empty micro-batch check every tick.
    for tick in 1..=11u64 {
        streaming.advance_watermark(tick * 1_000_000, 1_000_000, Some(policy));
    }
    let got = streaming.finalize_stream_round(Some(policy)).unwrap();
    assert_eq!(got.served, want.served);
    assert_eq!(got.awaiting_first_report, want.awaiting_first_report);
    assert_eq!(got.stale, want.stale);
    assert_eq!(got.shards_with_traffic, want.shards_with_traffic);
    let stats = streaming.shard_round_stats();
    assert!(
        stats[0].micro_closes >= 1 && stats[1].micro_closes >= 1,
        "traffic shards must have micro-closed mid-round: {stats:?}"
    );
    assert_eq!(stats[2].micro_closes, 0);
    assert_eq!(stats[3].micro_closes, 0);
}

/// A full streaming ring rejects ingest with `ServeError::Backpressure`
/// instead of silently overwriting queued feedback, and the failed ingest
/// leaves session state untouched.
#[test]
fn full_ring_rejects_with_backpressure() {
    let m = model(401);
    let bits = 4u8;
    let mut server = ApServer::new();
    let key = server.register_model(m.clone());
    server.register_station(7, key, bits).unwrap();
    server.set_streaming(true);
    server.set_stream_capacity(2);

    for seed in 0..2u64 {
        let frame = station_frame(&m, 6000 + seed, bits);
        server.ingest_wire(7, &frame).unwrap();
    }
    assert_eq!(server.session(7).unwrap().stream_inflight(), 2);
    let overflow = station_frame(&m, 6002, bits);
    assert_eq!(
        server.ingest_wire(7, &overflow),
        Err(ServeError::Backpressure(7, 2))
    );
    assert_eq!(
        server.session(7).unwrap().stream_inflight(),
        2,
        "a rejected ingest must not touch session counters"
    );

    // The queued frames still serve normally: last committed wins.
    let summary = server.process_round_streaming(None).unwrap();
    assert_eq!(summary.served, 1);
    assert_eq!(server.session(7).unwrap().stream_inflight(), 0);
    assert!(server.feedback_of(7).is_some());
}

/// A genuinely streaming round: two reports with staggered births close in
/// two separate watermark-triggered micro-batches, and the round summary
/// still folds up correctly.
#[test]
fn staggered_births_close_in_multiple_micro_batches() {
    let m = model(501);
    let bits = 6u8;
    let policy = DeadlinePolicy::eq7d();
    let mut server = ApServer::new();
    let key = server.register_model(m.clone());
    server.register_station(0, key, bits).unwrap();
    server.register_station(1, key, bits).unwrap();
    server.set_streaming(true);

    // Station 0 born at 1 ms (service deadline 11 ms), station 1 born at
    // 14 ms (service deadline 24 ms).
    let early = FrameStamp {
        arrival_ns: 1_000_000,
        ..FrameStamp::default()
    };
    let late = FrameStamp {
        arrival_ns: 14_000_000,
        ..FrameStamp::default()
    };
    server
        .ingest_wire_at(0, &station_frame(&m, 7000, bits), early)
        .unwrap();
    server
        .ingest_wire_at(1, &station_frame(&m, 7001, bits), late)
        .unwrap();

    for tick in 1..=25u64 {
        server.advance_watermark(tick * 1_000_000, 1_000_000, Some(policy));
    }
    // Station 0 was served by the 11 ms watermark — its feedback is already
    // visible mid-round, before the round close.
    assert!(server.feedback_of(0).is_some());
    let summary = server.process_round_streaming(Some(policy)).unwrap();
    assert_eq!(server.last_micro_closes(), 2, "two separate micro-closes");
    assert_eq!(summary.served, 2);
    assert_eq!(summary.batches, 2);
    assert_eq!(summary.on_time, 2);
    assert!(server.feedback_of(1).is_some());
}
