//! Property tests of the event-driven driver's correctness anchor: with zero
//! jitter, zero compute latency and an ideal medium, virtual-time serving is
//! **bit-exact** with the legacy lockstep drivers (single-shard batched,
//! station-at-a-time serial, and sharded at 1 and 4 shards), under both
//! `SPLITBEAM_KERNEL` backends — plus the deadline regression: a report past
//! the Eq. 7d budget is counted late (or expired), never silently served as
//! fresh.
//!
//! The kernel override is process-global, so every kernel-pinning test here
//! serializes on one mutex and restores the default before returning (the
//! same pattern as the `shard_parity` suite).

use mimo_math::kernel::{avx2_fma_available, set_kernel, KernelChoice};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, ChurnConfig, RoundServing,
    ServeMode, SimConfig,
};
use splitbeam_serve::event::{build_event_driver, build_sharded_event_driver, EventConfig};
use splitbeam_serve::timing::FrameStamp;
use splitbeam_serve::StationId;
use std::sync::Mutex;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the kernel pinned to `choice`, restoring default dispatch
/// afterwards (also on panic, via a drop guard).
fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(None);
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = Restore;
    set_kernel(Some(choice));
    f()
}

fn kernel_choices() -> Vec<KernelChoice> {
    let mut choices = vec![KernelChoice::Scalar];
    if avx2_fma_available() {
        choices.push(KernelChoice::Auto);
    }
    choices
}

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

/// The shard counts the acceptance criteria pin for the event driver.
const SHARD_COUNTS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every sampled workload (drops, churn, widths) and both kernel
    /// backends: the zero-delay event driver == legacy batched == legacy
    /// serial == sharded event driver at {1, 4} shards, bit for bit —
    /// summaries (including the new deadline/delay fields) and per-station
    /// feedback bytes.
    #[test]
    fn prop_lockstep_event_driver_is_bit_exact_with_legacy(
        seed in 0u64..1000,
        bits in 2u8..=12,
        drop_every in 0usize..6,
        join_every in 0usize..4,
        leave_every in 0usize..4,
    ) {
        let m = model(seed.wrapping_add(577));
        let cfg = SimConfig {
            stations: 5,
            rounds: 3,
            bits_per_value: bits,
            drop_every,
            churn: ChurnConfig {
                join_every,
                leave_every,
                burst_every: 0,
            },
            ..SimConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        for choice in kernel_choices() {
            with_kernel(choice, || {
                let mut batched = build_server(m.clone(), cfg.stations, bits);
                let want = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
                let mut serial = build_server(m.clone(), cfg.stations, bits);
                let want_serial = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
                prop_assert_eq!(&want, &want_serial);

                let mut event = build_event_driver(
                    m.clone(), cfg.stations, bits, EventConfig::lockstep(), None);
                let got = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
                prop_assert_eq!(&got, &want, "event (single shard) vs legacy, {:?}", choice);
                for id in 0..traffic.max_station_id {
                    prop_assert_eq!(
                        event.feedback_of(id),
                        batched.feedback_of(id),
                        "station {} feedback, {:?}", id, choice
                    );
                }

                for shards in SHARD_COUNTS {
                    let mut legacy_sharded =
                        build_sharded_server(m.clone(), cfg.stations, bits, shards);
                    let legacy = serve_traffic(&mut legacy_sharded, &traffic, ServeMode::Batched)
                        .unwrap();
                    let mut sharded_event = build_sharded_event_driver(
                        m.clone(), cfg.stations, bits, shards, EventConfig::lockstep(), None);
                    let got = serve_traffic(&mut sharded_event, &traffic, ServeMode::Batched)
                        .unwrap();
                    prop_assert_eq!(&got, &legacy,
                        "event vs legacy sharded, {} shards, {:?}", shards, choice);
                    prop_assert_eq!(got.total_served(), want.total_served());
                    for (g, w) in got.summaries.iter().zip(want.summaries.iter()) {
                        prop_assert_eq!(
                            (g.round, g.served, g.stale, g.awaiting_first_report,
                             g.on_time, g.late, g.expired, g.delay),
                            (w.round, w.served, w.stale, w.awaiting_first_report,
                             w.on_time, w.late, w.expired, w.delay),
                            "{} shards, {:?}", shards, choice
                        );
                    }
                    for id in 0..traffic.max_station_id {
                        prop_assert_eq!(
                            sharded_event.feedback_of(id),
                            batched.feedback_of(id),
                            "{} shards, station {}, {:?}", shards, id, choice
                        );
                    }
                }
            });
        }
    }
}

/// Regression test: a feedback frame whose virtual end-to-end delay lands
/// past the Eq. 7d budget is counted late (within grace) or expired (beyond
/// it) — in no case does the round report it as an on-time, fresh serve.
#[test]
fn past_budget_frame_is_never_silently_served_as_fresh() {
    let m = model(42);
    let cfg = SimConfig {
        stations: 3,
        rounds: 1,
        bits_per_value: 4,
        drop_every: 0,
        ..SimConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let traffic = generate_traffic(&cfg, &m, &mut rng);

    // Jitter amplitude far past budget + grace: with the seeded uniform
    // stream some frames land late or expired, and the lockstep invariant
    // on_time == served must break exactly by the flagged count.
    let mut event = build_event_driver(
        m.clone(),
        cfg.stations,
        cfg.bits_per_value,
        EventConfig {
            jitter_max_ns: 60_000_000, // up to 60 ms on a 10 ms budget
            seed: 7,
            ..EventConfig::lockstep()
        },
        None,
    );
    let outcome = serve_traffic(&mut event, &traffic, ServeMode::Batched).unwrap();
    let summary = &outcome.summaries[0];
    assert_eq!(summary.on_time + summary.late, summary.served);
    assert!(
        summary.late + summary.expired > 0,
        "60 ms jitter on a 10 ms budget must push someone past it"
    );
    // Expired stations were consumed without reconstruction: no feedback.
    let mut unreconstructed = 0;
    for id in 0..cfg.stations as StationId {
        if event.feedback_of(id).is_none() {
            unreconstructed += 1;
        } else {
            let session = event.inner().session(id).unwrap();
            // Any stored report past the budget is explicitly flagged late.
            if session.served_late() {
                let stamp = session.last_stamp().expect("timed serving stamps sessions");
                assert!(stamp.total_ns() > event.config().policy().budget_ns);
            }
        }
    }
    assert_eq!(unreconstructed, summary.expired);
}

/// The deadline closer enforces the budget on *stamps*, so a hand-stamped
/// frame past budget+grace is dropped even on the plain servers, without the
/// event driver in the loop.
#[test]
fn hand_stamped_expired_frame_is_dropped_by_the_deadline_close() {
    let m = model(44);
    let mut server = build_server(m.clone(), 2, 8);
    let frame = {
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let channel = wifi_phy::channel::ChannelModel::new(
            wifi_phy::channel::EnvironmentProfile::e1(),
            Bandwidth::Mhz20,
            2,
            1,
            1,
        );
        let csi: Vec<f32> = channel
            .sample(&mut rng)
            .csi_real_vector(0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let payload = m.compress_quantized(&csi, 8).unwrap();
        splitbeam::wire::encode_feedback(&payload).unwrap()
    };
    // Station 0 on time, station 1 stamped 25 ms end-to-end (10 budget + 10
    // grace < 25 -> expired).
    server
        .ingest_wire_at(0, &frame, FrameStamp::default())
        .unwrap();
    server
        .ingest_wire_at(
            1,
            &frame,
            FrameStamp {
                arrival_ns: 25_000_000,
                head_ns: 5_000_000,
                queue_ns: 15_000_000,
                air_ns: 5_000_000,
                tail_ns: 0,
            },
        )
        .unwrap();
    let policy = splitbeam_serve::DeadlinePolicy::eq7d();
    let summary = server.process_round_deadline(policy).unwrap();
    assert_eq!(
        (
            summary.served,
            summary.on_time,
            summary.late,
            summary.expired
        ),
        (1, 1, 0, 1)
    );
    assert!(server.feedback_of(0).is_some());
    assert!(
        server.feedback_of(1).is_none(),
        "expired report must never be reconstructed"
    );
    // The station's feedback aged/never arrived: it shows up in staleness
    // accounting, not in served.
    assert_eq!(summary.awaiting_first_report, 1);
}
