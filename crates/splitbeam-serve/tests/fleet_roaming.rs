//! Roaming handoff edge cases (PR 10 tentpole 3).
//!
//! A fleet handoff moves a station's *entire* [`StationSession`] between APs
//! — pending payloads, reconstructed feedback, health state, staleness
//! clocks. These tests pin the contract at the [`ApServer`] level against a
//! never-roamed control server running the identical schedule: with the same
//! model weights registered on every AP, roaming must be invisible in the
//! served bits.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_serve::server::ApServer;
use splitbeam_serve::{ServeError, SessionHealth, StationSession};
use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

fn station_frame(model: &SplitBeamModel, seed: u64, bits: u8) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 1, 1);
    let csi: Vec<f32> = channel
        .sample(&mut rng)
        .csi_real_vector(0)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let payload = model.compress_quantized(&csi, bits).unwrap();
    splitbeam::wire::encode_feedback(&payload).unwrap()
}

/// Two APs with the same model, plus a never-roamed control. All three tick
/// rounds in lockstep (a fleet closes every AP's round together), so session
/// clocks stay comparable.
struct Roamnet {
    a: ApServer,
    b: ApServer,
    control: ApServer,
    key: usize,
}

impl Roamnet {
    fn new(m: &SplitBeamModel) -> Self {
        let mut a = ApServer::new();
        let mut b = ApServer::new();
        let mut control = ApServer::new();
        let key = a.register_model(m.clone());
        assert_eq!(b.register_model(m.clone()), key);
        assert_eq!(control.register_model(m.clone()), key);
        Self { a, b, control, key }
    }

    fn close_round(&mut self) {
        self.a.process_round().unwrap();
        self.b.process_round().unwrap();
        self.control.process_round().unwrap();
    }

    fn handoff(from: &mut ApServer, to: &mut ApServer, id: u64, key: usize) {
        let session = from.release_station(id).unwrap();
        to.adopt_station(session, key).map_err(|(_, e)| e).unwrap();
    }

    fn assert_session_matches_control(&self, roamed: &ApServer, id: u64) {
        let s = roamed.session(id).unwrap();
        let c = self.control.session(id).unwrap();
        assert_eq!(s.feedback(), c.feedback(), "served bits diverged");
        assert_eq!(s.last_round(), c.last_round());
        assert_eq!(s.payloads_ingested(), c.payloads_ingested());
        assert_eq!(s.health(), c.health());
        assert_eq!(s.has_pending(), c.has_pending());
    }
}

#[test]
fn mid_round_pending_payload_travels_with_the_handoff() {
    let m = model(31);
    let mut net = Roamnet::new(&m);
    net.a.register_station(1, net.key, 4).unwrap();
    net.control.register_station(1, net.key, 4).unwrap();

    // The station reports mid-round, then roams BEFORE the round closes:
    // the pending payload must be served by the target AP, not dropped.
    let frame = station_frame(&m, 70, 4);
    net.a.ingest_wire(1, &frame).unwrap();
    net.control.ingest_wire(1, &frame).unwrap();
    Roamnet::handoff(&mut net.a, &mut net.b, 1, net.key);
    assert!(net.b.session(1).unwrap().has_pending());

    net.close_round();
    assert_eq!(net.b.feedback_of(1).unwrap().len(), 224);
    net.assert_session_matches_control(&net.b, 1);
}

#[test]
fn quarantine_travels_and_keeps_rejecting_at_the_target() {
    let m = model(33);
    let mut net = Roamnet::new(&m);
    net.a.register_station(1, net.key, 4).unwrap();
    net.control.register_station(1, net.key, 4).unwrap();

    let good = station_frame(&m, 71, 4);
    let mut bad = good.clone();
    bad[20] ^= 0x10;
    let threshold = net.a.health_policy().quarantine_after_corrupt;
    for _ in 0..threshold {
        assert!(matches!(
            net.a.ingest_wire(1, &bad),
            Err(ServeError::Corrupt(1, _))
        ));
        assert!(matches!(
            net.control.ingest_wire(1, &bad),
            Err(ServeError::Corrupt(1, _))
        ));
    }
    assert_eq!(
        net.a.session(1).unwrap().health(),
        SessionHealth::Quarantined
    );

    // Roaming does not launder a quarantine: the target rejects even
    // pristine frames until the quarantine expires.
    Roamnet::handoff(&mut net.a, &mut net.b, 1, net.key);
    assert_eq!(
        net.b.session(1).unwrap().health(),
        SessionHealth::Quarantined
    );
    assert_eq!(net.b.ingest_wire(1, &good), Err(ServeError::Quarantined(1)));
    net.close_round();
    net.assert_session_matches_control(&net.b, 1);

    // After the quarantine expires (in lockstep on both sides) the station
    // reports normally at its new AP.
    let rounds = net.a.health_policy().quarantine_rounds;
    for _ in 1..rounds {
        assert_eq!(net.b.ingest_wire(1, &good), Err(ServeError::Quarantined(1)));
        assert_eq!(
            net.control.ingest_wire(1, &good),
            Err(ServeError::Quarantined(1))
        );
        net.close_round();
    }
    net.b.ingest_wire(1, &good).unwrap();
    net.control.ingest_wire(1, &good).unwrap();
    net.close_round();
    assert_eq!(net.b.session(1).unwrap().health(), SessionHealth::Healthy);
    net.assert_session_matches_control(&net.b, 1);
}

#[test]
fn degraded_health_and_miss_streak_travel() {
    let m = model(35);
    let mut net = Roamnet::new(&m);
    // Station 1 goes silent; station 2 keeps the rounds non-empty so the
    // health pass actually runs.
    for server in [&mut net.a, &mut net.control] {
        server.register_station(1, net.key, 4).unwrap();
        server.register_station(2, net.key, 4).unwrap();
    }

    let f1 = station_frame(&m, 72, 4);
    net.a.ingest_wire(1, &f1).unwrap();
    net.control.ingest_wire(1, &f1).unwrap();
    let mut round = 0u64;
    let misses = net.a.health_policy().degrade_after_misses;
    loop {
        let keeper = station_frame(&m, 80 + round, 4);
        net.a.ingest_wire(2, &keeper).unwrap();
        net.control.ingest_wire(2, &keeper).unwrap();
        net.close_round();
        round += 1;
        if round > u64::from(misses) {
            break;
        }
    }
    assert_eq!(net.a.session(1).unwrap().health(), SessionHealth::Degraded);

    Roamnet::handoff(&mut net.a, &mut net.b, 1, net.key);
    let roamed = net.b.session(1).unwrap();
    assert_eq!(roamed.health(), SessionHealth::Degraded);
    assert_eq!(
        roamed.miss_streak(),
        net.control.session(1).unwrap().miss_streak()
    );
    net.assert_session_matches_control(&net.b, 1);
}

#[test]
fn double_handoff_back_to_origin_is_bit_exact_with_never_roamed() {
    let m = model(37);
    let mut net = Roamnet::new(&m);
    net.a.register_station(1, net.key, 4).unwrap();
    net.control.register_station(1, net.key, 4).unwrap();

    // Round 0 at home.
    let f0 = station_frame(&m, 90, 4);
    net.a.ingest_wire(1, &f0).unwrap();
    net.control.ingest_wire(1, &f0).unwrap();
    net.close_round();

    // Roam to B; round 1 served there.
    Roamnet::handoff(&mut net.a, &mut net.b, 1, net.key);
    let f1 = station_frame(&m, 91, 4);
    net.b.ingest_wire(1, &f1).unwrap();
    net.control.ingest_wire(1, &f1).unwrap();
    net.close_round();

    // Roam home again; round 2 served at the origin.
    Roamnet::handoff(&mut net.b, &mut net.a, 1, net.key);
    let f2 = station_frame(&m, 92, 4);
    net.a.ingest_wire(1, &f2).unwrap();
    net.control.ingest_wire(1, &f2).unwrap();
    net.close_round();

    net.assert_session_matches_control(&net.a, 1);
    assert_eq!(
        net.a.feedback_of(1).unwrap(),
        net.control.feedback_of(1).unwrap()
    );
    // The round trip left no ghost at B.
    assert_eq!(net.b.num_stations(), 0);
}

#[test]
fn failed_adoption_returns_the_session_for_restore() {
    let m = model(39);
    let mut a = ApServer::new();
    let key = a.register_model(m.clone());
    a.register_station(1, key, 4).unwrap();
    a.ingest_wire(1, &station_frame(&m, 95, 4)).unwrap();
    a.process_round().unwrap();
    let served = a.feedback_of(1).unwrap().to_vec();

    // The target has no models: adoption must fail and hand the session
    // back instead of dropping the station.
    let mut empty = ApServer::new();
    let session = a.release_station(1).unwrap();
    let (session, err): (StationSession, ServeError) =
        empty.adopt_station(session, key).unwrap_err();
    assert_eq!(err, ServeError::UnknownModel(key));

    // Restore at the source: the station is whole again, feedback intact.
    a.adopt_station(session, key).map_err(|(_, e)| e).unwrap();
    assert_eq!(a.feedback_of(1).unwrap(), served.as_slice());
}
