//! Property tests: sharded round processing is bit-exact with single-shard
//! batched and serial serving across shard counts, churn patterns and both
//! kernel backends.
//!
//! The kernel override is process-global, so every kernel-pinning test here
//! serializes on one mutex and restores the default before returning (the
//! same pattern as the workspace-level `kernel_dispatch` suite).

use mimo_math::kernel::{avx2_fma_available, set_kernel, KernelChoice};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splitbeam::config::{CompressionLevel, SplitBeamConfig};
use splitbeam::model::SplitBeamModel;
use splitbeam_serve::driver::{
    build_server, build_sharded_server, generate_traffic, serve_traffic, ChurnConfig, ServeMode,
    SimConfig,
};
use std::sync::Mutex;
use wifi_phy::ofdm::{Bandwidth, MimoConfig};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the kernel pinned to `choice`, restoring default dispatch
/// afterwards (also on panic, via a drop guard).
fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(None);
        }
    }
    let _guard = KERNEL_LOCK.lock().unwrap();
    let _restore = Restore;
    set_kernel(Some(choice));
    f()
}

fn kernel_choices() -> Vec<KernelChoice> {
    let mut choices = vec![KernelChoice::Scalar];
    if avx2_fma_available() {
        choices.push(KernelChoice::Auto);
    }
    choices
}

fn model(seed: u64) -> SplitBeamModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SplitBeamModel::new(
        SplitBeamConfig::new(
            MimoConfig::symmetric(2, Bandwidth::Mhz20),
            CompressionLevel::OneEighth,
        ),
        &mut rng,
    )
}

/// The shard counts the acceptance criteria pin.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every sampled churn pattern and both kernel backends: sharded
    /// parallel serving == single-shard batched == station-at-a-time serial,
    /// bit for bit, at shard counts {1, 2, 4, 7}.
    #[test]
    fn prop_sharded_matches_batched_and_serial(
        seed in 0u64..1000,
        bits in 2u8..=12,
        drop_every in 0usize..6,
        join_every in 0usize..4,
        leave_every in 0usize..4,
        burst_every in 0usize..4,
    ) {
        let m = model(seed.wrapping_add(101));
        let cfg = SimConfig {
            stations: 5,
            rounds: 3,
            bits_per_value: bits,
            drop_every,
            snr_db: 25.0,
            churn: ChurnConfig { join_every, leave_every, burst_every },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        for choice in kernel_choices() {
            with_kernel(choice, || {
                let mut batched = build_server(m.clone(), cfg.stations, bits);
                let mut serial = build_server(m.clone(), cfg.stations, bits);
                let b = serve_traffic(&mut batched, &traffic, ServeMode::Batched).unwrap();
                let s = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
                prop_assert_eq!(&b, &s, "batched vs serial summaries ({:?})", choice);
                for &shards in &SHARD_COUNTS {
                    let mut sharded =
                        build_sharded_server(m.clone(), cfg.stations, bits, shards);
                    let o = serve_traffic(&mut sharded, &traffic, ServeMode::Batched).unwrap();
                    prop_assert_eq!(o.total_served(), b.total_served());
                    for (got, want) in o.summaries.iter().zip(b.summaries.iter()) {
                        prop_assert_eq!(got.round, want.round);
                        prop_assert_eq!(got.served, want.served);
                        prop_assert_eq!(got.stale, want.stale);
                        prop_assert_eq!(
                            got.awaiting_first_report,
                            want.awaiting_first_report
                        );
                    }
                    for id in 0..traffic.max_station_id {
                        prop_assert_eq!(
                            sharded.feedback_of(id),
                            batched.feedback_of(id),
                            "{} shards, station {} ({:?})", shards, id, choice
                        );
                        prop_assert_eq!(
                            sharded.feedback_of(id),
                            serial.feedback_of(id),
                            "{} shards vs serial, station {} ({:?})", shards, id, choice
                        );
                    }
                }
            });
        }
    }

    /// The sharded serial reference (per-shard station-at-a-time close) is
    /// bit-exact with sharded parallel batched serving under churn.
    #[test]
    fn prop_sharded_serial_mode_matches_batched_mode(
        seed in 0u64..1000,
        shards_sel in 0usize..4,
        drop_every in 0usize..5,
    ) {
        let shards = SHARD_COUNTS[shards_sel];
        let m = model(seed.wrapping_add(301));
        let cfg = SimConfig {
            stations: 6,
            rounds: 3,
            bits_per_value: 4,
            drop_every,
            snr_db: 25.0,
            churn: ChurnConfig { join_every: 2, leave_every: 0, burst_every: 3 },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let mut parallel = build_sharded_server(m.clone(), cfg.stations, 4, shards);
        let mut serial = build_sharded_server(m.clone(), cfg.stations, 4, shards);
        let p = serve_traffic(&mut parallel, &traffic, ServeMode::Batched).unwrap();
        let s = serve_traffic(&mut serial, &traffic, ServeMode::Serial).unwrap();
        prop_assert_eq!(p.total_served(), s.total_served());
        for id in 0..traffic.max_station_id {
            prop_assert_eq!(parallel.feedback_of(id), serial.feedback_of(id));
        }
    }
}

/// Eviction/re-registration state transitions hold at every shard count.
#[test]
fn eviction_and_reregistration_transitions_across_shard_counts() {
    let m = model(77);
    for &shards in &SHARD_COUNTS {
        let mut server = build_sharded_server(m.clone(), 6, 4, shards);
        server.set_max_idle_rounds(Some(0));
        let cfg = SimConfig {
            stations: 6,
            rounds: 4,
            bits_per_value: 4,
            drop_every: 4,
            snr_db: 25.0,
            churn: ChurnConfig::none(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let traffic = generate_traffic(&cfg, &m, &mut rng);
        let outcome = serve_traffic(&mut server, &traffic, ServeMode::Batched).unwrap();
        // With a zero idle budget, every dropped report leads to an eviction
        // and the station's next frame re-associates it.
        assert!(
            outcome.reassociations > 0,
            "{shards} shards: drops must force re-association"
        );
        // Re-registered sessions are fresh: anyone present now either
        // reported this round or just re-joined.
        for session in server.sessions() {
            assert!(
                session.idle_rounds(server.current_round().saturating_sub(1)) == 0,
                "{shards} shards: survivor must be fresh"
            );
        }
    }
}
