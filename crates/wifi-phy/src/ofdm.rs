//! OFDM / bandwidth configuration of IEEE 802.11ac/ax.
//!
//! The paper works with the 802.11ac VHT subcarrier layouts extracted by Nexmon
//! (56, 114 and 242 data+pilot subcarriers for 20/40/80 MHz) and a 160 MHz
//! synthetic configuration. [`Bandwidth`] captures those layouts plus a few
//! timing constants used by the airtime model.

use serde::{Deserialize, Serialize};

/// Channel bandwidth of an 802.11ac/ax transmission.
///
/// The associated subcarrier counts follow the values used by the paper
/// (Section 5.2.1): 56 / 114 / 242 usable subcarriers at 20 / 40 / 80 MHz, and
/// 484 at 160 MHz for the synthetic datasets.
///
/// ```
/// use wifi_phy::Bandwidth;
/// assert_eq!(Bandwidth::Mhz20.subcarriers(), 56);
/// assert_eq!(Bandwidth::Mhz80.mhz(), 80);
/// assert!(Bandwidth::Mhz160.subcarriers() > Bandwidth::Mhz80.subcarriers());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bandwidth {
    /// 20 MHz channel (56 usable subcarriers in VHT).
    Mhz20,
    /// 40 MHz channel (114 usable subcarriers).
    Mhz40,
    /// 80 MHz channel (242 usable subcarriers).
    Mhz80,
    /// 160 MHz channel (484 usable subcarriers); only synthetic data in the paper.
    Mhz160,
}

impl Bandwidth {
    /// All bandwidths in increasing order.
    pub const ALL: [Bandwidth; 4] = [
        Bandwidth::Mhz20,
        Bandwidth::Mhz40,
        Bandwidth::Mhz80,
        Bandwidth::Mhz160,
    ];

    /// The bandwidths for which the paper has measured (non-synthetic) datasets.
    pub const MEASURED: [Bandwidth; 3] = [Bandwidth::Mhz20, Bandwidth::Mhz40, Bandwidth::Mhz80];

    /// Number of usable (data + pilot) subcarriers reported by the CSI extractor.
    pub fn subcarriers(self) -> usize {
        match self {
            Bandwidth::Mhz20 => 56,
            Bandwidth::Mhz40 => 114,
            Bandwidth::Mhz80 => 242,
            Bandwidth::Mhz160 => 484,
        }
    }

    /// Nominal channel width in MHz.
    pub fn mhz(self) -> u32 {
        match self {
            Bandwidth::Mhz20 => 20,
            Bandwidth::Mhz40 => 40,
            Bandwidth::Mhz80 => 80,
            Bandwidth::Mhz160 => 160,
        }
    }

    /// OFDM subcarrier spacing in Hz (802.11ac uses 312.5 kHz).
    pub fn subcarrier_spacing_hz(self) -> f64 {
        312_500.0
    }

    /// Total signal bandwidth in Hz.
    pub fn hz(self) -> f64 {
        self.mhz() as f64 * 1e6
    }

    /// OFDM symbol duration including the long guard interval, in seconds
    /// (3.2 us useful + 0.8 us GI for 802.11ac).
    pub fn symbol_duration_s(self) -> f64 {
        4.0e-6
    }

    /// Parses a bandwidth from its MHz value.
    ///
    /// Returns `None` for unsupported widths.
    ///
    /// ```
    /// use wifi_phy::Bandwidth;
    /// assert_eq!(Bandwidth::from_mhz(40), Some(Bandwidth::Mhz40));
    /// assert_eq!(Bandwidth::from_mhz(30), None);
    /// ```
    pub fn from_mhz(mhz: u32) -> Option<Bandwidth> {
        match mhz {
            20 => Some(Bandwidth::Mhz20),
            40 => Some(Bandwidth::Mhz40),
            80 => Some(Bandwidth::Mhz80),
            160 => Some(Bandwidth::Mhz160),
            _ => None,
        }
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} MHz", self.mhz())
    }
}

/// A complete MU-MIMO network configuration: AP antennas, per-station antennas
/// and spatial streams, and channel bandwidth.
///
/// The paper's notation: `Nt` transmit antennas at the AP, `Ns` stations each
/// with `Nr` receive antennas and `Nss` spatial streams; the evaluation always
/// uses `Nss = 1` per station and `Nt = Ns` (e.g. "3x3" means a 3-antenna AP
/// serving 3 single-stream stations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MimoConfig {
    /// Number of AP (transmit) antennas, `Nt`.
    pub nt: usize,
    /// Number of receive antennas per station, `Nr`.
    pub nr: usize,
    /// Number of stations served simultaneously, `Ns`.
    pub num_stations: usize,
    /// Spatial streams per station, `Nss`.
    pub nss: usize,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
}

impl MimoConfig {
    /// Creates the symmetric `n x n` configuration used throughout the paper:
    /// an `n`-antenna AP serving `n` stations, each with `n` receive antennas
    /// (matching the Nexmon STAs, which report all their chains) and one
    /// spatial stream.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn symmetric(n: usize, bandwidth: Bandwidth) -> Self {
        assert!(n > 0, "MIMO order must be at least 1");
        Self {
            nt: n,
            nr: n,
            num_stations: n,
            nss: 1,
            bandwidth,
        }
    }

    /// Creates a fully custom configuration.
    ///
    /// # Panics
    /// Panics if any dimension is zero or if the total number of streams
    /// (`num_stations * nss`) exceeds `nt` (the paper assumes
    /// `Nt = sum_i Nss_i`, so more streams than antennas is invalid).
    pub fn new(
        nt: usize,
        nr: usize,
        num_stations: usize,
        nss: usize,
        bandwidth: Bandwidth,
    ) -> Self {
        assert!(
            nt > 0 && nr > 0 && num_stations > 0 && nss > 0,
            "dimensions must be non-zero"
        );
        assert!(
            num_stations * nss <= nt,
            "total spatial streams ({}) exceed transmit antennas ({})",
            num_stations * nss,
            nt
        );
        Self {
            nt,
            nr,
            num_stations,
            nss,
            bandwidth,
        }
    }

    /// Number of subcarriers of the configured bandwidth.
    pub fn subcarriers(&self) -> usize {
        self.bandwidth.subcarriers()
    }

    /// Total number of downlink spatial streams, `sum_i Nss_i`.
    pub fn total_streams(&self) -> usize {
        self.num_stations * self.nss
    }

    /// Number of real values in one CSI tensor `H` (`2 * Nr * Nt * S`),
    /// i.e. the DNN input dimension after decoupling real/imaginary parts.
    pub fn csi_real_dim(&self) -> usize {
        2 * self.nr * self.nt * self.subcarriers()
    }

    /// Number of real values in one beamforming feedback tensor `V`
    /// (`2 * Nt * Nss * S`), i.e. the DNN output dimension.
    pub fn bf_real_dim(&self) -> usize {
        2 * self.nt * self.nss * self.subcarriers()
    }

    /// A short human-readable label such as `"3x3 @ 80 MHz"`.
    pub fn label(&self) -> String {
        format!("{}x{} @ {}", self.nt, self.num_stations, self.bandwidth)
    }
}

impl std::fmt::Display for MimoConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_counts_match_paper() {
        assert_eq!(Bandwidth::Mhz20.subcarriers(), 56);
        assert_eq!(Bandwidth::Mhz40.subcarriers(), 114);
        assert_eq!(Bandwidth::Mhz80.subcarriers(), 242);
        assert_eq!(Bandwidth::Mhz160.subcarriers(), 484);
    }

    #[test]
    fn from_mhz_roundtrip() {
        for bw in Bandwidth::ALL {
            assert_eq!(Bandwidth::from_mhz(bw.mhz()), Some(bw));
        }
        assert_eq!(Bandwidth::from_mhz(30), None);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Bandwidth::Mhz80), "80 MHz");
    }

    #[test]
    fn symmetric_config_dimensions() {
        let cfg = MimoConfig::symmetric(3, Bandwidth::Mhz40);
        assert_eq!(cfg.nt, 3);
        assert_eq!(cfg.nr, 3);
        assert_eq!(cfg.num_stations, 3);
        assert_eq!(cfg.nss, 1);
        assert_eq!(cfg.total_streams(), 3);
        assert_eq!(cfg.subcarriers(), 114);
    }

    #[test]
    fn dnn_dimensions() {
        let cfg = MimoConfig::symmetric(2, Bandwidth::Mhz20);
        // 2 * 2 * 2 * 56 = 448 input reals, matching Table II's 20 MHz "224-..." models
        // per complex dimension convention (the paper lists 224 = Nr*Nt*S real pairs / 2
        // per real/imag half; our interleaved convention is 448 total).
        assert_eq!(cfg.csi_real_dim(), 448);
        assert_eq!(cfg.bf_real_dim(), 224);
    }

    #[test]
    fn label_format() {
        let cfg = MimoConfig::symmetric(4, Bandwidth::Mhz160);
        assert_eq!(cfg.label(), "4x4 @ 160 MHz");
    }

    #[test]
    #[should_panic]
    fn too_many_streams_panics() {
        let _ = MimoConfig::new(2, 2, 3, 1, Bandwidth::Mhz20);
    }

    #[test]
    #[should_panic]
    fn zero_order_panics() {
        let _ = MimoConfig::symmetric(0, Bandwidth::Mhz20);
    }

    #[test]
    fn timing_constants_sane() {
        for bw in Bandwidth::ALL {
            assert!(bw.symbol_duration_s() > 0.0);
            assert!(bw.subcarrier_spacing_hz() > 0.0);
            assert!(bw.hz() >= 20e6);
        }
    }
}
