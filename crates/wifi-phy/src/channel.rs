//! Clustered tap-delay-line MU-MIMO channel simulator.
//!
//! This module is the stand-in for the paper's data sources: the Nexmon CSI
//! measurement campaigns in environments **E1** and **E2** and the MATLAB
//! `wlanTGacChannel` *Model-B* synthetic channels. It implements a TGn/TGac
//! style simulator:
//!
//! * each environment is a set of multipath **taps** (delay, power, Rician K),
//! * every tap carries an `Nr x Nt` complex Gaussian MIMO matrix with Kronecker
//!   spatial correlation at both ends,
//! * the frequency response at subcarrier `s` is the Fourier sum of the taps,
//! * consecutive packets evolve through an AR(1) process parameterized by the
//!   Doppler spread, and environment E2 additionally applies random human
//!   blockage events to individual taps.
//!
//! The two environment profiles intentionally differ in richness (number of
//! taps/clusters, delay spread, Doppler, blockage) so the single- versus
//! cross-environment experiments of the paper (Figs. 12–13) remain meaningful.

use crate::ofdm::{Bandwidth, MimoConfig};
use mimo_math::svd::Svd;
use mimo_math::{CMatrix, Complex64};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One multipath tap of a tap-delay-line profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tap {
    /// Excess delay of the tap in nanoseconds.
    pub delay_ns: f64,
    /// Average tap power in dB relative to the strongest tap.
    pub power_db: f64,
    /// Rician K-factor in dB for this tap; `None` means pure Rayleigh fading.
    pub rician_k_db: Option<f64>,
}

impl Tap {
    /// Convenience constructor for a Rayleigh tap.
    pub fn rayleigh(delay_ns: f64, power_db: f64) -> Self {
        Self {
            delay_ns,
            power_db,
            rician_k_db: None,
        }
    }

    /// Convenience constructor for a Rician (partially line-of-sight) tap.
    pub fn rician(delay_ns: f64, power_db: f64, k_db: f64) -> Self {
        Self {
            delay_ns,
            power_db,
            rician_k_db: Some(k_db),
        }
    }

    /// Linear power of the tap.
    pub fn power_linear(&self) -> f64 {
        10f64.powf(self.power_db / 10.0)
    }
}

/// A propagation-environment profile: the complete statistical description of
/// one measurement environment.
///
/// Use [`EnvironmentProfile::e1`], [`EnvironmentProfile::e2`] or
/// [`EnvironmentProfile::model_b`] for the three environments of the paper, or
/// build a custom profile for ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentProfile {
    /// Short name used in dataset catalogs and reports (e.g. "E1").
    pub name: String,
    /// Multipath taps.
    pub taps: Vec<Tap>,
    /// Exponential antenna-correlation coefficient at the transmitter, in `[0, 1)`.
    pub tx_correlation: f64,
    /// Exponential antenna-correlation coefficient at the receiver, in `[0, 1)`.
    pub rx_correlation: f64,
    /// Maximum Doppler spread in Hz (pedestrian mobility / environment dynamics).
    pub doppler_hz: f64,
    /// Per-packet probability that a human-blockage event attenuates one tap.
    pub blockage_probability: f64,
    /// Attenuation applied by a blockage event, in dB.
    pub blockage_depth_db: f64,
    /// Standard deviation of the per-sample CSI estimation noise (relative to
    /// the unit-power channel), modelling the imperfect channel estimation of
    /// real measurement hardware.
    pub estimation_noise_std: f64,
}

impl EnvironmentProfile {
    /// Environment **E1** of the paper: an office with few reflectors and low
    /// human traffic — a short, partly line-of-sight power-delay profile with
    /// low Doppler and no blockage events.
    pub fn e1() -> Self {
        Self {
            name: "E1".to_string(),
            taps: vec![
                Tap::rician(0.0, 0.0, 3.0),
                Tap::rayleigh(10.0, -5.4),
                Tap::rayleigh(20.0, -10.8),
                Tap::rayleigh(30.0, -16.2),
                Tap::rayleigh(40.0, -21.7),
            ],
            tx_correlation: 0.35,
            rx_correlation: 0.30,
            doppler_hz: 1.5,
            blockage_probability: 0.0,
            blockage_depth_db: 0.0,
            estimation_noise_std: 0.02,
        }
    }

    /// Environment **E2** of the paper: a furnished room with many reflectors
    /// and frequent human traffic — a longer, richer power-delay profile with
    /// higher Doppler and random blockage events.
    pub fn e2() -> Self {
        Self {
            name: "E2".to_string(),
            taps: vec![
                Tap::rayleigh(0.0, 0.0),
                Tap::rayleigh(10.0, -0.9),
                Tap::rayleigh(20.0, -1.7),
                Tap::rayleigh(30.0, -2.6),
                Tap::rayleigh(50.0, -3.5),
                Tap::rayleigh(80.0, -7.4),
                Tap::rayleigh(110.0, -11.1),
                Tap::rayleigh(140.0, -13.3),
                Tap::rayleigh(180.0, -16.4),
                Tap::rayleigh(230.0, -19.1),
                Tap::rayleigh(280.0, -21.7),
                Tap::rayleigh(330.0, -24.4),
                Tap::rayleigh(400.0, -27.8),
            ],
            tx_correlation: 0.15,
            rx_correlation: 0.12,
            doppler_hz: 6.0,
            blockage_probability: 0.08,
            blockage_depth_db: 8.0,
            estimation_noise_std: 0.04,
        }
    }

    /// The IEEE TGac **Model-B** profile (9 taps, 2 clusters) used by the paper
    /// for the 160 MHz synthetic datasets D13–D15, matching the published
    /// Model-B power delay profile.
    pub fn model_b() -> Self {
        Self {
            name: "Model-B".to_string(),
            taps: vec![
                // Cluster 1
                Tap::rayleigh(0.0, 0.0),
                Tap::rayleigh(10.0, -5.4),
                Tap::rayleigh(20.0, -10.8),
                Tap::rayleigh(30.0, -16.2),
                Tap::rayleigh(40.0, -21.7),
                // Cluster 2 (starts at 20 ns with its own decay)
                Tap::rayleigh(20.0, -3.2),
                Tap::rayleigh(40.0, -6.3),
                Tap::rayleigh(60.0, -9.4),
                Tap::rayleigh(80.0, -12.5),
            ],
            tx_correlation: 0.25,
            rx_correlation: 0.20,
            doppler_hz: 3.0,
            blockage_probability: 0.0,
            blockage_depth_db: 0.0,
            estimation_noise_std: 0.0,
        }
    }

    /// RMS delay spread of the profile in nanoseconds.
    pub fn rms_delay_spread_ns(&self) -> f64 {
        let total_power: f64 = self.taps.iter().map(Tap::power_linear).sum();
        if total_power == 0.0 {
            return 0.0;
        }
        let mean_delay: f64 = self
            .taps
            .iter()
            .map(|t| t.power_linear() * t.delay_ns)
            .sum::<f64>()
            / total_power;
        let second_moment: f64 = self
            .taps
            .iter()
            .map(|t| t.power_linear() * t.delay_ns * t.delay_ns)
            .sum::<f64>()
            / total_power;
        (second_moment - mean_delay * mean_delay).max(0.0).sqrt()
    }
}

/// Lower-triangular Cholesky factor of the exponential correlation matrix
/// `R[i][j] = rho^|i-j|` of size `n`.
fn exponential_correlation_cholesky(n: usize, rho: f64) -> Vec<Vec<f64>> {
    // Build R then run a plain Cholesky; n <= 8 so cost is negligible.
    let r: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| rho.powi((i as i32 - j as i32).abs()))
                .collect()
        })
        .collect();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = r[i][j];
            // Indexed on purpose: `l[i]` and `l[j]` alias when i == j.
            #[allow(clippy::needless_range_loop)]
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                l[i][j] = sum.max(1e-12).sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    l
}

/// Draws a standard complex Gaussian (unit variance per complex dimension).
fn complex_gaussian(rng: &mut impl Rng) -> Complex64 {
    // Box-Muller; each of re/im has variance 1/2 so |z|^2 has mean 1.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let mag = (-u1.ln()).sqrt();
    let phase = 2.0 * std::f64::consts::PI * u2;
    Complex64::from_polar(mag, phase)
}

/// One tap realization: an `Nr x Nt` MIMO matrix.
#[derive(Debug, Clone)]
struct TapState {
    gain: CMatrix,
    delay_s: f64,
    power: f64,
    rician_k: Option<f64>,
    blocked: bool,
}

/// A time-evolving multi-user channel: holds the per-user, per-tap MIMO fading
/// state and produces correlated [`ChannelSnapshot`]s packet after packet.
///
/// ```
/// use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
/// use wifi_phy::ofdm::Bandwidth;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(3);
/// let model = ChannelModel::new(EnvironmentProfile::e2(), Bandwidth::Mhz20, 2, 2, 1);
/// let mut process = model.process(&mut rng);
/// let first = process.advance(1e-3, &mut rng);
/// let second = process.advance(1e-3, &mut rng);
/// assert_eq!(first.num_users(), 2);
/// assert_eq!(second.subcarriers(), 56);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelProcess {
    model: ChannelModel,
    users: Vec<Vec<TapState>>,
    tx_chol: Vec<Vec<f64>>,
    rx_chol: Vec<Vec<f64>>,
}

/// Static description of a multi-user channel: environment profile plus MIMO
/// and bandwidth configuration. Use [`ChannelModel::sample`] for independent
/// snapshots or [`ChannelModel::process`] for temporally correlated traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Propagation environment.
    pub profile: EnvironmentProfile,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Number of AP antennas `Nt`.
    pub nt: usize,
    /// Number of receive antennas per station `Nr`.
    pub nr: usize,
    /// Number of stations `Ns`.
    pub num_stations: usize,
    /// Spatial streams per station (always 1 in the paper's evaluation).
    pub nss: usize,
}

impl ChannelModel {
    /// Creates a channel model with one spatial stream per station.
    ///
    /// # Panics
    /// Panics if any dimension is zero or the total number of streams exceeds `nt`.
    pub fn new(
        profile: EnvironmentProfile,
        bandwidth: Bandwidth,
        nt: usize,
        num_stations: usize,
        nss: usize,
    ) -> Self {
        // Receive antennas default to nt (the measurement STAs expose all chains).
        Self::with_rx_antennas(profile, bandwidth, nt, nt, num_stations, nss)
    }

    /// Creates a channel model with an explicit number of receive antennas.
    ///
    /// # Panics
    /// Panics if any dimension is zero or the total number of streams exceeds `nt`.
    pub fn with_rx_antennas(
        profile: EnvironmentProfile,
        bandwidth: Bandwidth,
        nt: usize,
        nr: usize,
        num_stations: usize,
        nss: usize,
    ) -> Self {
        assert!(nt > 0 && nr > 0 && num_stations > 0 && nss > 0);
        assert!(
            num_stations * nss <= nt,
            "total streams exceed transmit antennas"
        );
        Self {
            profile,
            bandwidth,
            nt,
            nr,
            num_stations,
            nss,
        }
    }

    /// Builds a model from a [`MimoConfig`].
    pub fn from_config(profile: EnvironmentProfile, config: &MimoConfig) -> Self {
        Self::with_rx_antennas(
            profile,
            config.bandwidth,
            config.nt,
            config.nr,
            config.num_stations,
            config.nss,
        )
    }

    /// The equivalent [`MimoConfig`].
    pub fn config(&self) -> MimoConfig {
        MimoConfig {
            nt: self.nt,
            nr: self.nr,
            num_stations: self.num_stations,
            nss: self.nss,
            bandwidth: self.bandwidth,
        }
    }

    /// Starts a time-correlated channel process.
    pub fn process(&self, rng: &mut impl Rng) -> ChannelProcess {
        let tx_chol = exponential_correlation_cholesky(self.nt, self.profile.tx_correlation);
        let rx_chol = exponential_correlation_cholesky(self.nr, self.profile.rx_correlation);
        let users = (0..self.num_stations)
            .map(|_| {
                self.profile
                    .taps
                    .iter()
                    .map(|tap| TapState {
                        gain: correlated_gaussian_matrix(self.nr, self.nt, &rx_chol, &tx_chol, rng),
                        delay_s: tap.delay_ns * 1e-9,
                        power: tap.power_linear(),
                        rician_k: tap.rician_k_db.map(|k| 10f64.powf(k / 10.0)),
                        blocked: false,
                    })
                    .collect()
            })
            .collect();
        ChannelProcess {
            model: self.clone(),
            users,
            tx_chol,
            rx_chol,
        }
    }

    /// Draws one independent channel snapshot (no temporal correlation with any
    /// other snapshot).
    pub fn sample(&self, rng: &mut impl Rng) -> ChannelSnapshot {
        self.process(rng).snapshot(rng)
    }
}

/// Draws an `nr x nt` matrix of i.i.d. complex Gaussians and applies Kronecker
/// correlation `L_rx * G * L_tx^T`.
fn correlated_gaussian_matrix(
    nr: usize,
    nt: usize,
    rx_chol: &[Vec<f64>],
    tx_chol: &[Vec<f64>],
    rng: &mut impl Rng,
) -> CMatrix {
    let g = CMatrix::from_fn(nr, nt, |_, _| complex_gaussian(rng));
    // out[r][c] = sum_{i,j} Lrx[r][i] * G[i][j] * Ltx[c][j]
    CMatrix::from_fn(nr, nt, |r, c| {
        let mut acc = Complex64::ZERO;
        for i in 0..=r.min(nr - 1) {
            let lr = rx_chol[r][i];
            if lr == 0.0 {
                continue;
            }
            for j in 0..=c.min(nt - 1) {
                let lt = tx_chol[c][j];
                if lt != 0.0 {
                    acc += g[(i, j)].scale(lr * lt);
                }
            }
        }
        acc
    })
}

impl ChannelProcess {
    /// Advances the fading state by `dt` seconds and returns the resulting
    /// channel snapshot. Consecutive calls produce temporally correlated CSI
    /// with correlation controlled by the profile's Doppler spread.
    pub fn advance(&mut self, dt: f64, rng: &mut impl Rng) -> ChannelSnapshot {
        // Gaussian autocorrelation approximation of Clarke's model:
        // rho = exp(-(pi * fd * dt)^2 / 2), clamped for numerical safety.
        let fd = self.model.profile.doppler_hz;
        let x = std::f64::consts::PI * fd * dt;
        let rho = (-(x * x) / 2.0).exp().clamp(0.0, 1.0);
        let innovation_scale = (1.0 - rho * rho).sqrt();

        let nr = self.model.nr;
        let nt = self.model.nt;
        for user_taps in &mut self.users {
            for tap in user_taps.iter_mut() {
                let innovation =
                    correlated_gaussian_matrix(nr, nt, &self.rx_chol, &self.tx_chol, rng);
                tap.gain = tap
                    .gain
                    .scale_real(rho)
                    .add(&innovation.scale_real(innovation_scale));
                // Blockage events toggle per packet.
                tap.blocked = rng.gen_bool(self.model.profile.blockage_probability.clamp(0.0, 1.0));
            }
        }
        self.snapshot(rng)
    }

    /// Produces the snapshot for the current fading state without advancing time.
    pub fn snapshot(&self, rng: &mut impl Rng) -> ChannelSnapshot {
        let model = &self.model;
        let s_count = model.bandwidth.subcarriers();
        let delta_f = model.bandwidth.subcarrier_spacing_hz();
        let total_power: f64 = model.profile.taps.iter().map(Tap::power_linear).sum();
        let norm = 1.0 / total_power.max(1e-12).sqrt();
        let blockage_lin = 10f64.powf(-model.profile.blockage_depth_db / 20.0);
        let noise_std = model.profile.estimation_noise_std;

        let mut per_user = Vec::with_capacity(model.num_stations);
        for user_taps in &self.users {
            let mut per_subcarrier = Vec::with_capacity(s_count);
            for s in 0..s_count {
                // Center the usable subcarriers around DC.
                let f = (s as f64 - (s_count as f64 - 1.0) / 2.0) * delta_f;
                let mut h = CMatrix::zeros(model.nr, model.nt);
                for (tap_idx, tap) in user_taps.iter().enumerate() {
                    let spec = &model.profile.taps[tap_idx];
                    let mut amplitude = (tap.power).sqrt() * norm;
                    if tap.blocked {
                        amplitude *= blockage_lin;
                    }
                    let phase = Complex64::cis(-2.0 * std::f64::consts::PI * f * tap.delay_s);
                    // Rician taps mix a deterministic LOS component with the fading part.
                    let gain = if let Some(k) = tap.rician_k {
                        let los_scale = (k / (k + 1.0)).sqrt();
                        let nlos_scale = (1.0 / (k + 1.0)).sqrt();
                        let los = CMatrix::from_fn(model.nr, model.nt, |r, c| {
                            // A deterministic rank-1 LOS steering structure.
                            Complex64::cis(std::f64::consts::PI * (r as f64 * 0.3 + c as f64 * 0.2))
                        });
                        los.scale_real(los_scale)
                            .add(&tap.gain.scale_real(nlos_scale))
                    } else {
                        tap.gain.clone()
                    };
                    let _ = spec;
                    h = h.add(&gain.scale(phase).scale_real(amplitude));
                }
                if noise_std > 0.0 {
                    let noise = CMatrix::from_fn(model.nr, model.nt, |_, _| complex_gaussian(rng))
                        .scale_real(noise_std);
                    h = h.add(&noise);
                }
                per_subcarrier.push(h);
            }
            per_user.push(per_subcarrier);
        }

        ChannelSnapshot {
            nt: model.nt,
            nr: model.nr,
            nss: model.nss,
            bandwidth: model.bandwidth,
            per_user,
        }
    }
}

/// One multi-user CSI observation: for every station, the `Nr x Nt` channel
/// matrix on every subcarrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSnapshot {
    nt: usize,
    nr: usize,
    nss: usize,
    bandwidth: Bandwidth,
    /// `per_user[u][s]` is the `Nr x Nt` channel of user `u` on subcarrier `s`.
    per_user: Vec<Vec<CMatrix>>,
}

impl ChannelSnapshot {
    /// Builds a snapshot from raw per-user, per-subcarrier channel matrices.
    ///
    /// # Panics
    /// Panics if the nesting is empty or the matrices disagree in shape.
    pub fn from_matrices(bandwidth: Bandwidth, nss: usize, per_user: Vec<Vec<CMatrix>>) -> Self {
        assert!(!per_user.is_empty(), "at least one user required");
        assert!(!per_user[0].is_empty(), "at least one subcarrier required");
        let (nr, nt) = per_user[0][0].shape();
        for user in &per_user {
            assert_eq!(user.len(), per_user[0].len(), "subcarrier count mismatch");
            for h in user {
                assert_eq!(h.shape(), (nr, nt), "channel matrix shape mismatch");
            }
        }
        Self {
            nt,
            nr,
            nss,
            bandwidth,
            per_user,
        }
    }

    /// Number of stations in the snapshot.
    pub fn num_users(&self) -> usize {
        self.per_user.len()
    }

    /// Number of subcarriers in the snapshot.
    pub fn subcarriers(&self) -> usize {
        self.per_user[0].len()
    }

    /// Number of AP antennas.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Number of station antennas.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Spatial streams per station.
    pub fn nss(&self) -> usize {
        self.nss
    }

    /// Channel bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The per-subcarrier channel matrices of station `user`.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn csi(&self, user: usize) -> &[CMatrix] {
        &self.per_user[user]
    }

    /// Mutable access to the per-subcarrier channel matrices of station `user`
    /// (used by the dataset pipeline to inject capture artifacts).
    pub fn csi_mut(&mut self, user: usize) -> &mut Vec<CMatrix> {
        &mut self.per_user[user]
    }

    /// Computes the ideal (SVD-based) beamforming feedback for every station:
    /// `result[u][s]` is the `Nt x Nss` matrix of dominant right singular
    /// vectors of `H_u(s)` — exactly what the 802.11 procedure would feed back
    /// with infinite precision.
    pub fn ideal_beamforming(&self) -> Vec<Vec<CMatrix>> {
        self.per_user
            .iter()
            .map(|per_sc| {
                per_sc
                    .iter()
                    .map(|h| Svd::compute(h).beamforming_matrix(self.nss))
                    .collect()
            })
            .collect()
    }

    /// Flattens user `user`'s CSI into the interleaved real vector the DNNs
    /// consume (length `2 * Nr * Nt * S`).
    pub fn csi_real_vector(&self, user: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 * self.nr * self.nt * self.subcarriers());
        for h in &self.per_user[user] {
            out.extend(h.to_real_vec());
        }
        out
    }

    /// Average per-entry channel power across users and subcarriers; used to
    /// sanity-check normalization.
    pub fn average_power(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for user in &self.per_user {
            for h in user {
                total += h.as_slice().iter().map(|z| z.norm_sqr()).sum::<f64>();
                count += h.rows() * h.cols();
            }
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn profiles_have_distinct_richness() {
        let e1 = EnvironmentProfile::e1();
        let e2 = EnvironmentProfile::e2();
        assert!(e2.taps.len() > e1.taps.len());
        assert!(e2.rms_delay_spread_ns() > e1.rms_delay_spread_ns());
        assert!(e2.doppler_hz > e1.doppler_hz);
        assert!(e2.blockage_probability > e1.blockage_probability);
    }

    #[test]
    fn model_b_has_nine_taps() {
        assert_eq!(EnvironmentProfile::model_b().taps.len(), 9);
    }

    #[test]
    fn snapshot_dimensions() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 3, 3, 1);
        let snap = model.sample(&mut rng);
        assert_eq!(snap.num_users(), 3);
        assert_eq!(snap.subcarriers(), 56);
        assert_eq!(snap.csi(0)[0].shape(), (3, 3));
        assert_eq!(snap.csi_real_vector(1).len(), 2 * 3 * 3 * 56);
    }

    #[test]
    fn average_power_is_order_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = ChannelModel::new(EnvironmentProfile::e2(), Bandwidth::Mhz20, 2, 2, 1);
        let mut acc = 0.0;
        let n = 20;
        for _ in 0..n {
            acc += model.sample(&mut rng).average_power();
        }
        let avg = acc / n as f64;
        assert!(avg > 0.3 && avg < 3.0, "average power {avg} not O(1)");
    }

    #[test]
    fn frequency_selectivity_present() {
        // With multipath, different subcarriers must see different channels.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = ChannelModel::new(EnvironmentProfile::e2(), Bandwidth::Mhz80, 2, 2, 1);
        let snap = model.sample(&mut rng);
        let first = &snap.csi(0)[0];
        let last = &snap.csi(0)[snap.subcarriers() - 1];
        assert!(first.sub(last).frobenius_norm() > 1e-3);
    }

    #[test]
    fn temporal_correlation_decays_with_doppler() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = ChannelModel::new(EnvironmentProfile::e2(), Bandwidth::Mhz20, 2, 2, 1);
        let mut process = model.process(&mut rng);
        let a = process.advance(0.0, &mut rng);
        let b = process.advance(1e-3, &mut rng); // 1 ms later: highly correlated
        let c = process.advance(10.0, &mut rng); // 10 s later: decorrelated
        let d_small = a.csi(0)[0].sub(&b.csi(0)[0]).frobenius_norm();
        let d_large = b.csi(0)[0].sub(&c.csi(0)[0]).frobenius_norm();
        assert!(
            d_small < d_large,
            "1 ms step ({d_small}) should change the channel less than 10 s ({d_large})"
        );
    }

    #[test]
    fn ideal_beamforming_has_unit_norm_columns() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = model.sample(&mut rng);
        let bf = snap.ideal_beamforming();
        assert_eq!(bf.len(), 2);
        assert_eq!(bf[0].len(), 56);
        for v in &bf[0] {
            assert_eq!(v.shape(), (2, 1));
            assert!(v.is_unitary_columns(1e-9));
        }
    }

    #[test]
    fn users_have_independent_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = model.sample(&mut rng);
        let diff = snap.csi(0)[0].sub(&snap.csi(1)[0]).frobenius_norm();
        assert!(diff > 1e-3, "different users should see different channels");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap_a = model.sample(&mut ChaCha8Rng::seed_from_u64(42));
        let snap_b = model.sample(&mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(snap_a, snap_b);
    }

    #[test]
    fn from_matrices_validates_shapes() {
        let h = CMatrix::identity(2);
        let snap = ChannelSnapshot::from_matrices(
            Bandwidth::Mhz20,
            1,
            vec![vec![h.clone(), h.clone()], vec![h.clone(), h]],
        );
        assert_eq!(snap.num_users(), 2);
        assert_eq!(snap.subcarriers(), 2);
    }

    #[test]
    #[should_panic]
    fn from_matrices_rejects_mismatched_shapes() {
        let _ = ChannelSnapshot::from_matrices(
            Bandwidth::Mhz20,
            1,
            vec![vec![CMatrix::identity(2)], vec![CMatrix::identity(3)]],
        );
    }

    #[test]
    fn rms_delay_spread_zero_for_single_tap() {
        let profile = EnvironmentProfile {
            name: "flat".into(),
            taps: vec![Tap::rayleigh(0.0, 0.0)],
            tx_correlation: 0.0,
            rx_correlation: 0.0,
            doppler_hz: 0.0,
            blockage_probability: 0.0,
            blockage_depth_db: 0.0,
            estimation_noise_std: 0.0,
        };
        assert!(profile.rms_delay_spread_ns() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_snapshot_shapes_consistent(nt in 1usize..4, users in 1usize..3, seed in 0u64..200) {
            prop_assume!(users <= nt);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, nt, users, 1);
            let snap = model.sample(&mut rng);
            prop_assert_eq!(snap.num_users(), users);
            prop_assert_eq!(snap.csi(0)[0].shape(), (nt, nt));
            prop_assert!(snap.average_power().is_finite());
        }

        #[test]
        fn prop_cholesky_reconstructs_correlation(n in 1usize..6, rho in 0.0f64..0.9) {
            let l = exponential_correlation_cholesky(n, rho);
            for i in 0..n {
                for j in 0..n {
                    let val: f64 = l[i].iter().zip(l[j].iter()).map(|(a, b)| a * b).sum();
                    let expected = rho.powi((i as i32 - j as i32).abs());
                    prop_assert!((val - expected).abs() < 1e-6);
                }
            }
        }
    }
}
