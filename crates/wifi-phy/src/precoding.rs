//! Zero-forcing MU-MIMO precoding from beamforming feedback.
//!
//! The paper's BER procedure (Section 5.2.1, steps 3–4) stacks the per-user
//! beamforming matrices into an equivalent channel `H_EQ = [V_1 ... V_Ns]` and
//! computes the zero-forcing precoder `W = H_EQ (H_EQ^H H_EQ)^{-1}`. The AP then
//! transmits one stream per user through the corresponding column of `W`.

use crate::PhyError;
use mimo_math::solve::zf_pseudo_inverse_into;
use mimo_math::{CMatrix, Workspace};

/// Per-user, per-subcarrier beamforming feedback: `feedback[u][s]` is the
/// `Nt x Nss` beamforming matrix reported by station `u` for subcarrier `s`.
pub type BeamformingFeedback = Vec<Vec<CMatrix>>;

/// The zero-forcing precoders for every subcarrier: `precoders[s]` is the
/// `Nt x (Ns * Nss)` transmit matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ZfPrecoder {
    precoders: Vec<CMatrix>,
    streams_per_user: usize,
    num_users: usize,
}

impl ZfPrecoder {
    /// Computes the per-subcarrier zero-forcing precoders from the beamforming
    /// feedback of all stations.
    ///
    /// Each column of the resulting precoder is normalized to unit power so
    /// every stream is transmitted with the same energy regardless of how well
    /// conditioned the equivalent channel is (total power then equals the
    /// number of streams, matching the `sqrt(rho / Nt)` scaling of Eq. (1)).
    ///
    /// # Errors
    /// * [`PhyError::DimensionMismatch`] when users disagree on the number of
    ///   subcarriers or matrix shapes.
    /// * [`PhyError::SingularChannel`] when the stacked feedback is rank
    ///   deficient (e.g. two stations reporting identical vectors).
    pub fn from_feedback(feedback: &BeamformingFeedback) -> Result<Self, PhyError> {
        if feedback.is_empty() || feedback[0].is_empty() {
            return Err(PhyError::DimensionMismatch(
                "feedback must contain at least one user and one subcarrier".into(),
            ));
        }
        let num_users = feedback.len();
        let subcarriers = feedback[0].len();
        let (nt, nss) = feedback[0][0].shape();
        for (u, per_sc) in feedback.iter().enumerate() {
            if per_sc.len() != subcarriers {
                return Err(PhyError::DimensionMismatch(format!(
                    "user {u} reports {} subcarriers, expected {subcarriers}",
                    per_sc.len()
                )));
            }
            for v in per_sc {
                if v.shape() != (nt, nss) {
                    return Err(PhyError::DimensionMismatch(format!(
                        "user {u} beamforming matrix is {:?}, expected ({nt}, {nss})",
                        v.shape()
                    )));
                }
            }
        }

        // One workspace and one stacked-channel buffer serve every subcarrier;
        // only the precoder matrices themselves are allocated per subcarrier.
        let mut ws = Workspace::new();
        let mut h_eq = CMatrix::zeros(1, 1);
        let mut precoders = Vec::with_capacity(subcarriers);
        for s in 0..subcarriers {
            // H_EQ = [V_1 ... V_Ns], Nt x (Ns * Nss)
            h_eq.reshape_zeroed(nt, num_users * nss);
            for (u, user) in feedback.iter().enumerate() {
                let v = &user[s];
                for r in 0..nt {
                    for c in 0..nss {
                        h_eq[(r, u * nss + c)] = v[(r, c)];
                    }
                }
            }
            let mut w = CMatrix::zeros(1, 1);
            zf_pseudo_inverse_into(&h_eq, &mut ws, &mut w)
                .map_err(|_| PhyError::SingularChannel)?;
            // Normalize each column (stream) to unit power, in place.
            for c in 0..w.cols() {
                let norm: f64 = (0..w.rows())
                    .map(|r| w[(r, c)].norm_sqr())
                    .sum::<f64>()
                    .sqrt();
                if norm < 1e-12 {
                    return Err(PhyError::SingularChannel);
                }
                for r in 0..w.rows() {
                    w[(r, c)] = w[(r, c)] / norm;
                }
            }
            precoders.push(w);
        }

        Ok(Self {
            precoders,
            streams_per_user: nss,
            num_users,
        })
    }

    /// The precoder matrix of subcarrier `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn precoder(&self, s: usize) -> &CMatrix {
        &self.precoders[s]
    }

    /// Number of subcarriers covered by this precoder.
    pub fn subcarriers(&self) -> usize {
        self.precoders.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Columns of the precoder belonging to user `u` on subcarrier `s`
    /// (an `Nt x Nss` matrix).
    pub fn user_precoder(&self, s: usize, u: usize) -> CMatrix {
        let w = &self.precoders[s];
        let start = u * self.streams_per_user;
        CMatrix::from_fn(w.rows(), self.streams_per_user, |r, c| w[(r, start + c)])
    }
}

/// Residual inter-user interference power of a precoder against the *true*
/// per-user channels: `sum_{i != j} || H_i W_j ||_F^2 / count`.
///
/// With ideal feedback and well-separated users this is small; feedback
/// compression error increases it, which is the mechanism by which SplitBeam's
/// reconstruction error translates into BER.
pub fn residual_interference(
    true_channels: &[Vec<CMatrix>],
    precoder: &ZfPrecoder,
) -> Result<f64, PhyError> {
    if true_channels.len() != precoder.num_users() {
        return Err(PhyError::DimensionMismatch(format!(
            "{} channels vs {} users in precoder",
            true_channels.len(),
            precoder.num_users()
        )));
    }
    let subcarriers = precoder.subcarriers();
    let mut total = 0.0;
    let mut count = 0usize;
    for s in 0..subcarriers {
        for (i, h_user) in true_channels.iter().enumerate() {
            let h = &h_user[s];
            for j in 0..precoder.num_users() {
                if i == j {
                    continue;
                }
                let leak = h.matmul(&precoder.user_precoder(s, j));
                total += leak.frobenius_norm().powi(2);
                count += 1;
            }
        }
    }
    Ok(if count == 0 {
        0.0
    } else {
        total / count as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelModel, EnvironmentProfile};
    use crate::ofdm::Bandwidth;
    use mimo_math::Complex64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn snapshot(seed: u64, n: usize) -> crate::channel::ChannelSnapshot {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, n, n, 1);
        model.sample(&mut rng)
    }

    #[test]
    fn precoder_dimensions() {
        let snap = snapshot(1, 2);
        let feedback = snap.ideal_beamforming();
        let zf = ZfPrecoder::from_feedback(&feedback).unwrap();
        assert_eq!(zf.subcarriers(), 56);
        assert_eq!(zf.num_users(), 2);
        assert_eq!(zf.precoder(0).shape(), (2, 2));
        assert_eq!(zf.user_precoder(0, 1).shape(), (2, 1));
    }

    #[test]
    fn columns_are_unit_power() {
        let snap = snapshot(2, 3);
        let zf = ZfPrecoder::from_feedback(&snap.ideal_beamforming()).unwrap();
        for s in [0, 10, 55] {
            let w = zf.precoder(s);
            for c in 0..w.cols() {
                let p: f64 = w.column(c).iter().map(|z| z.norm_sqr()).sum();
                assert!((p - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zf_property_against_reported_vectors() {
        // V_i^H w_j must be ~0 for i != j (ZF against the *reported* directions).
        let snap = snapshot(3, 3);
        let feedback = snap.ideal_beamforming();
        let zf = ZfPrecoder::from_feedback(&feedback).unwrap();
        for s in [0, 25] {
            for (i, feedback_i) in feedback.iter().enumerate() {
                for j in 0..3 {
                    if i == j {
                        continue;
                    }
                    let vi = &feedback_i[s];
                    let wj = zf.user_precoder(s, j);
                    let leak = vi.hermitian().matmul(&wj).frobenius_norm();
                    assert!(leak < 1e-9, "leak {leak} at s={s}, i={i}, j={j}");
                }
            }
        }
    }

    #[test]
    fn ideal_feedback_has_lower_interference_than_corrupted() {
        let snap = snapshot(4, 3);
        let ideal = snap.ideal_beamforming();
        let channels: Vec<Vec<CMatrix>> = (0..3).map(|u| snap.csi(u).to_vec()).collect();
        let zf_ideal = ZfPrecoder::from_feedback(&ideal).unwrap();
        let i_ideal = residual_interference(&channels, &zf_ideal).unwrap();

        // Corrupt the feedback with a strong perturbation.
        let corrupted: BeamformingFeedback = ideal
            .iter()
            .enumerate()
            .map(|(u, per_sc)| {
                per_sc
                    .iter()
                    .enumerate()
                    .map(|(s, v)| {
                        let noise = CMatrix::from_fn(v.rows(), v.cols(), |r, c| {
                            Complex64::new(
                                ((u + r + s) as f64 * 0.37).sin() * 0.5,
                                ((c + s) as f64 * 0.73).cos() * 0.5,
                            )
                        });
                        v.add(&noise)
                    })
                    .collect()
            })
            .collect();
        let zf_bad = ZfPrecoder::from_feedback(&corrupted).unwrap();
        let i_bad = residual_interference(&channels, &zf_bad).unwrap();
        assert!(
            i_bad > i_ideal,
            "corrupted feedback should leak more interference ({i_bad} vs {i_ideal})"
        );
    }

    #[test]
    fn singular_feedback_is_rejected() {
        // Two stations reporting the same vector -> rank-deficient H_EQ.
        let v = CMatrix::from_fn(2, 1, |r, _| Complex64::new(1.0 / (r as f64 + 1.0), 0.0));
        let feedback: BeamformingFeedback = vec![vec![v.clone()], vec![v]];
        assert_eq!(
            ZfPrecoder::from_feedback(&feedback).unwrap_err(),
            PhyError::SingularChannel
        );
    }

    #[test]
    fn empty_feedback_is_rejected() {
        let err = ZfPrecoder::from_feedback(&vec![]).unwrap_err();
        assert!(matches!(err, PhyError::DimensionMismatch(_)));
    }

    #[test]
    fn mismatched_subcarrier_counts_rejected() {
        let v = CMatrix::identity(2).first_columns(1);
        let feedback: BeamformingFeedback = vec![vec![v.clone(), v.clone()], vec![v]];
        let err = ZfPrecoder::from_feedback(&feedback).unwrap_err();
        assert!(matches!(err, PhyError::DimensionMismatch(_)));
    }
}
