//! Gray-coded QAM modulation and hard-decision demapping.
//!
//! The paper's BER procedure modulates random payload bits with 16-QAM
//! (Section 5.2.1, step 1). BPSK, QPSK and 64-QAM are also provided so the
//! link simulator can sweep modulation orders in ablation experiments.

use crate::PhyError;
use mimo_math::Complex64;
use serde::{Deserialize, Serialize};

/// Modulation scheme of the payload symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// 1 bit/symbol.
    Bpsk,
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol — the scheme used in the paper's BER measurements.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Number of bits carried by one symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Normalization factor so the average symbol energy is 1.
    fn scale(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Gray-maps `bits_per_symbol / 2` bits to one PAM amplitude.
    fn pam_level(bits: &[bool]) -> f64 {
        // Gray mapping for 1, 2 or 3 bits per I/Q rail.
        match bits.len() {
            0 => 0.0,
            1 => {
                if bits[0] {
                    1.0
                } else {
                    -1.0
                }
            }
            2 => {
                // Gray order: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
                match (bits[0], bits[1]) {
                    (false, false) => -3.0,
                    (false, true) => -1.0,
                    (true, true) => 1.0,
                    (true, false) => 3.0,
                }
            }
            3 => {
                // Gray order over 8 levels.
                let idx = (bits[0] as usize) << 2 | (bits[1] as usize) << 1 | bits[2] as usize;
                const GRAY_TO_LEVEL: [f64; 8] = [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0];
                GRAY_TO_LEVEL[idx]
            }
            _ => unreachable!("unsupported PAM width"),
        }
    }

    /// Hard-slices one PAM amplitude back to bits.
    fn pam_bits(level: f64, width: usize) -> Vec<bool> {
        match width {
            0 => vec![],
            1 => vec![level >= 0.0],
            2 => {
                // Decision boundaries at -2, 0, +2 on the unnormalized grid.
                if level < -2.0 {
                    vec![false, false]
                } else if level < 0.0 {
                    vec![false, true]
                } else if level < 2.0 {
                    vec![true, true]
                } else {
                    vec![true, false]
                }
            }
            3 => {
                let candidates = [-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0];
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (i, &c) in candidates.iter().enumerate() {
                    let d = (level - c).abs();
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                // Invert the Gray map of `pam_level`.
                const LEVEL_TO_GRAY: [u8; 8] =
                    [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
                let g = LEVEL_TO_GRAY[best];
                vec![(g >> 2) & 1 == 1, (g >> 1) & 1 == 1, g & 1 == 1]
            }
            _ => unreachable!("unsupported PAM width"),
        }
    }

    /// Maps a bit slice to one constellation symbol.
    ///
    /// # Errors
    /// Returns [`PhyError::DimensionMismatch`] when `bits.len()` differs from
    /// [`Modulation::bits_per_symbol`].
    pub fn modulate_symbol(self, bits: &[bool]) -> Result<Complex64, PhyError> {
        if bits.len() != self.bits_per_symbol() {
            return Err(PhyError::DimensionMismatch(format!(
                "expected {} bits per symbol, got {}",
                self.bits_per_symbol(),
                bits.len()
            )));
        }
        let symbol = match self {
            Modulation::Bpsk => Complex64::new(Self::pam_level(&bits[0..1]), 0.0),
            Modulation::Qpsk => {
                Complex64::new(Self::pam_level(&bits[0..1]), Self::pam_level(&bits[1..2]))
            }
            Modulation::Qam16 => {
                Complex64::new(Self::pam_level(&bits[0..2]), Self::pam_level(&bits[2..4]))
            }
            Modulation::Qam64 => {
                Complex64::new(Self::pam_level(&bits[0..3]), Self::pam_level(&bits[3..6]))
            }
        };
        Ok(symbol.scale(self.scale()))
    }

    /// Hard-demaps one received symbol to bits.
    pub fn demodulate_symbol(self, symbol: Complex64) -> Vec<bool> {
        let unscaled = symbol / self.scale();
        match self {
            Modulation::Bpsk => Self::pam_bits(unscaled.re, 1),
            Modulation::Qpsk => {
                let mut bits = Self::pam_bits(unscaled.re, 1);
                bits.extend(Self::pam_bits(unscaled.im, 1));
                bits
            }
            Modulation::Qam16 => {
                let mut bits = Self::pam_bits(unscaled.re, 2);
                bits.extend(Self::pam_bits(unscaled.im, 2));
                bits
            }
            Modulation::Qam64 => {
                let mut bits = Self::pam_bits(unscaled.re, 3);
                bits.extend(Self::pam_bits(unscaled.im, 3));
                bits
            }
        }
    }

    /// Maps a full bit stream to symbols; the tail is zero-padded to a whole symbol.
    pub fn modulate(self, bits: &[bool]) -> Vec<Complex64> {
        let bps = self.bits_per_symbol();
        bits.chunks(bps)
            .map(|chunk| {
                let mut padded = chunk.to_vec();
                padded.resize(bps, false);
                self.modulate_symbol(&padded)
                    .expect("padded chunk always has the right width")
            })
            .collect()
    }

    /// Demaps a symbol stream back to a bit stream.
    pub fn demodulate(self, symbols: &[Complex64]) -> Vec<bool> {
        symbols
            .iter()
            .flat_map(|&s| self.demodulate_symbol(s))
            .collect()
    }
}

/// Counts the number of differing bits between two equally long bit slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn count_bit_errors(sent: &[bool], received: &[bool]) -> usize {
    assert_eq!(sent.len(), received.len(), "bit streams must align");
    sent.iter()
        .zip(received.iter())
        .filter(|(a, b)| a != b)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng as _;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    #[test]
    fn bits_per_symbol_values() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
    }

    #[test]
    fn noiseless_roundtrip_all_schemes() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for m in ALL {
            let bits: Vec<bool> = (0..m.bits_per_symbol() * 64).map(|_| rng.gen()).collect();
            let symbols = m.modulate(&bits);
            let decoded = m.demodulate(&symbols);
            assert_eq!(bits, decoded, "{m:?} roundtrip failed");
        }
    }

    #[test]
    fn unit_average_energy() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for m in ALL {
            let bits: Vec<bool> = (0..m.bits_per_symbol() * 4096).map(|_| rng.gen()).collect();
            let symbols = m.modulate(&bits);
            let energy: f64 =
                symbols.iter().map(|s| s.norm_sqr()).sum::<f64>() / symbols.len() as f64;
            assert!(
                (energy - 1.0).abs() < 0.05,
                "{m:?} average energy {energy} not ~1"
            );
        }
    }

    #[test]
    fn wrong_bit_width_is_rejected() {
        let err = Modulation::Qam16
            .modulate_symbol(&[true, false])
            .unwrap_err();
        assert!(matches!(err, PhyError::DimensionMismatch(_)));
    }

    #[test]
    fn qam16_constellation_has_16_points() {
        let mut points = Vec::new();
        for idx in 0..16u8 {
            let bits: Vec<bool> = (0..4).map(|b| (idx >> (3 - b)) & 1 == 1).collect();
            let sym = Modulation::Qam16.modulate_symbol(&bits).unwrap();
            points.push(sym);
        }
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert!(
                    (points[i] - points[j]).abs() > 1e-6,
                    "constellation points collide"
                );
            }
        }
    }

    #[test]
    fn gray_mapping_neighbor_property_qam16() {
        // Adjacent PAM levels must differ in exactly one bit (Gray property).
        let levels = [-3.0, -1.0, 1.0, 3.0];
        for w in levels.windows(2) {
            let a = Modulation::pam_bits(w[0], 2);
            let b = Modulation::pam_bits(w[1], 2);
            let diff = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn count_bit_errors_counts() {
        let a = vec![true, false, true, true];
        let b = vec![true, true, true, false];
        assert_eq!(count_bit_errors(&a, &b), 2);
        assert_eq!(count_bit_errors(&a, &a), 0);
    }

    #[test]
    fn padding_of_partial_symbol() {
        let bits = vec![true, false, true]; // 3 bits for a 4-bit symbol
        let symbols = Modulation::Qam16.modulate(&bits);
        assert_eq!(symbols.len(), 1);
        let decoded = Modulation::Qam16.demodulate(&symbols);
        assert_eq!(&decoded[..3], &bits[..]);
        assert!(!decoded[3]); // the pad bit is zero
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random_bits(seed in 0u64..500, n_sym in 1usize..64) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for m in ALL {
                let bits: Vec<bool> = (0..m.bits_per_symbol() * n_sym).map(|_| rng.gen()).collect();
                let decoded = m.demodulate(&m.modulate(&bits));
                prop_assert_eq!(bits, decoded);
            }
        }

        #[test]
        fn prop_small_noise_does_not_flip_bits(seed in 0u64..200) {
            // Noise well inside half the minimum constellation distance must be harmless.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let m = Modulation::Qam16;
            let bits: Vec<bool> = (0..4 * 32).map(|_| rng.gen()).collect();
            let symbols = m.modulate(&bits);
            let noisy: Vec<Complex64> = symbols
                .iter()
                .map(|&s| s + Complex64::new(rng.gen_range(-0.05..0.05), rng.gen_range(-0.05..0.05)))
                .collect();
            prop_assert_eq!(count_bit_errors(&bits, &m.demodulate(&noisy)), 0);
        }
    }
}
