//! Airtime model of the IEEE 802.11 multi-user channel sounding procedure.
//!
//! Figure 3 of the paper shows the sounding sequence: the AP sends an NDP
//! Announcement followed by an NDP; each station then returns its beamforming
//! report, solicited by Beamforming Report Poll frames, all separated by SIFS.
//! This module turns a feedback payload size into airtime so the end-to-end
//! delay constraint (Eq. 7d) and the feedback-overhead comparisons can be
//! evaluated without radio hardware.

use crate::ofdm::Bandwidth;
use serde::{Deserialize, Serialize};

/// Short interframe space of 802.11 at 5 GHz, in seconds.
pub const SIFS_S: f64 = 16e-6;

/// Duration of the NDP Announcement control frame, in seconds.
pub const NDP_ANNOUNCEMENT_S: f64 = 68e-6;

/// Duration of one Null Data Packet (sounding frame), in seconds.
pub const NDP_S: f64 = 72e-6;

/// Duration of a Beamforming Report Poll frame, in seconds.
pub const BRP_POLL_S: f64 = 44e-6;

/// PHY/MAC overhead of one feedback frame (preamble + headers), in seconds.
pub const FEEDBACK_FRAME_OVERHEAD_S: f64 = 60e-6;

/// Parameters of the sounding airtime model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoundingConfig {
    /// Channel bandwidth (affects the feedback transmission rate).
    pub bandwidth: Bandwidth,
    /// Number of stations polled in one sounding round.
    pub num_stations: usize,
    /// Data rate at which the compressed feedback is transmitted, in Mbit/s.
    /// The paper's overhead estimates assume feedback is sent at a basic rate;
    /// the default scales a conservative 24 Mbit/s with the channel width.
    pub feedback_rate_mbps: f64,
    /// How often the AP re-sounds the channel, in seconds (10 ms in MU-MIMO
    /// according to the reference cited by the paper).
    pub sounding_interval_s: f64,
}

impl SoundingConfig {
    /// A conservative default configuration for the given bandwidth and number
    /// of stations: 24 Mbit/s per 20 MHz of bandwidth, 10 ms sounding interval.
    pub fn new(bandwidth: Bandwidth, num_stations: usize) -> Self {
        Self {
            bandwidth,
            num_stations,
            feedback_rate_mbps: 24.0 * (bandwidth.mhz() as f64 / 20.0),
            sounding_interval_s: 0.01,
        }
    }
}

/// Breakdown of one sounding round's airtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoundingAirtime {
    /// Airtime of the fixed protocol frames (NDPA, NDP, polls, SIFS), in seconds.
    pub protocol_s: f64,
    /// Airtime of the feedback frames of all stations (PHY/MAC overhead plus
    /// payload — exactly `num_stations` × [`feedback_frame_airtime_s`]), in
    /// seconds.
    pub feedback_s: f64,
}

impl SoundingAirtime {
    /// Total airtime of the sounding round.
    pub fn total_s(&self) -> f64 {
        self.protocol_s + self.feedback_s
    }
}

/// Airtime needed to transmit `payload_bits` of beamforming feedback at
/// `rate_mbps`, excluding frame overhead.
pub fn feedback_payload_airtime_s(payload_bits: usize, rate_mbps: f64) -> f64 {
    payload_bits as f64 / (rate_mbps * 1e6)
}

/// On-air duration of **one** feedback frame: the PHY/MAC frame overhead plus
/// the payload at `rate_mbps`. This is the single per-frame airtime primitive:
/// [`sounding_round_airtime`] sums it per polled station, and the shared-medium
/// model of the event-driven simulator charges exactly this duration per frame
/// it serializes — the two can never drift.
pub fn feedback_frame_airtime_s(payload_bits: usize, rate_mbps: f64) -> f64 {
    FEEDBACK_FRAME_OVERHEAD_S + feedback_payload_airtime_s(payload_bits, rate_mbps)
}

/// Computes the airtime of one complete multi-user sounding round in which each
/// of the `num_stations` stations returns `per_station_feedback_bits` bits.
pub fn sounding_round_airtime(
    config: &SoundingConfig,
    per_station_feedback_bits: usize,
) -> SoundingAirtime {
    let n = config.num_stations.max(1);
    // NDPA + SIFS + NDP, then for every station: SIFS + (poll for all but the
    // first) + SIFS + feedback frame (the shared per-frame primitive).
    let mut protocol = NDP_ANNOUNCEMENT_S + SIFS_S + NDP_S;
    let mut feedback = 0.0;
    for station in 0..n {
        if station > 0 {
            protocol += SIFS_S + BRP_POLL_S;
        }
        protocol += SIFS_S;
        feedback += feedback_frame_airtime_s(per_station_feedback_bits, config.feedback_rate_mbps);
    }
    SoundingAirtime {
        protocol_s: protocol,
        feedback_s: feedback,
    }
}

/// Fraction of airtime consumed by channel sounding when repeated every
/// `sounding_interval_s` (e.g. 0.043 means 4.3 % of airtime is overhead).
pub fn sounding_overhead_fraction(
    config: &SoundingConfig,
    per_station_feedback_bits: usize,
) -> f64 {
    sounding_round_airtime(config, per_station_feedback_bits).total_s() / config.sounding_interval_s
}

/// The throughput (bit/s) consumed by feedback alone, matching the paper's
/// introduction example ("435,456 bits every 10 ms is 43.55 Mbit/s").
pub fn feedback_throughput_bps(
    per_station_feedback_bits: usize,
    num_stations: usize,
    interval_s: f64,
) -> f64 {
    (per_station_feedback_bits * num_stations) as f64 / interval_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intro_example_matches() {
        // 8x8 at 160 MHz: 486 subcarriers x 56 angles x 16 bits = 435,456 bits,
        // every 10 ms -> ~43.55 Mbit/s.
        let bits = 486 * 56 * 16;
        let throughput = feedback_throughput_bps(bits, 1, 0.01);
        assert!((throughput - 43.5456e6).abs() < 1e3);
    }

    #[test]
    fn airtime_grows_with_feedback_size() {
        let cfg = SoundingConfig::new(Bandwidth::Mhz80, 3);
        let small = sounding_round_airtime(&cfg, 1_000).total_s();
        let large = sounding_round_airtime(&cfg, 100_000).total_s();
        assert!(large > small);
    }

    #[test]
    fn airtime_grows_with_station_count() {
        let one = SoundingConfig::new(Bandwidth::Mhz40, 1);
        let four = SoundingConfig::new(Bandwidth::Mhz40, 4);
        let bits = 10_000;
        assert!(
            sounding_round_airtime(&four, bits).total_s()
                > sounding_round_airtime(&one, bits).total_s()
        );
    }

    #[test]
    fn overhead_fraction_is_ratio_of_interval() {
        let cfg = SoundingConfig::new(Bandwidth::Mhz20, 2);
        let bits = 20_000;
        let airtime = sounding_round_airtime(&cfg, bits).total_s();
        let frac = sounding_overhead_fraction(&cfg, bits);
        assert!((frac - airtime / 0.01).abs() < 1e-12);
    }

    #[test]
    fn feedback_rate_scales_with_bandwidth() {
        let narrow = SoundingConfig::new(Bandwidth::Mhz20, 1);
        let wide = SoundingConfig::new(Bandwidth::Mhz160, 1);
        assert!(wide.feedback_rate_mbps > narrow.feedback_rate_mbps);
        let bits = 50_000;
        assert!(
            sounding_round_airtime(&wide, bits).feedback_s
                < sounding_round_airtime(&narrow, bits).feedback_s
        );
    }

    #[test]
    fn zero_stations_treated_as_one() {
        let cfg = SoundingConfig {
            bandwidth: Bandwidth::Mhz20,
            num_stations: 0,
            feedback_rate_mbps: 24.0,
            sounding_interval_s: 0.01,
        };
        assert!(sounding_round_airtime(&cfg, 100).total_s() > 0.0);
    }

    /// Satellite consistency test: the round airtime's feedback component must
    /// decompose exactly into `num_stations` copies of the shared per-frame
    /// primitive, for every bandwidth × station count × payload width — so the
    /// round-level math and any per-frame consumer (the event simulator's
    /// shared-medium model) can never drift.
    #[test]
    fn round_feedback_airtime_is_stations_times_frame_airtime() {
        let bandwidths = [
            Bandwidth::Mhz20,
            Bandwidth::Mhz40,
            Bandwidth::Mhz80,
            Bandwidth::Mhz160,
        ];
        for &bw in &bandwidths {
            for stations in [1usize, 2, 4, 8] {
                for bits in [56usize, 1_000, 43_520, 435_456] {
                    let cfg = SoundingConfig::new(bw, stations);
                    let round = sounding_round_airtime(&cfg, bits);
                    let per_frame = feedback_frame_airtime_s(bits, cfg.feedback_rate_mbps);
                    assert!(
                        (round.feedback_s - stations as f64 * per_frame).abs() < 1e-15,
                        "{bw:?}, {stations} stations, {bits} bits"
                    );
                    // The frame primitive always includes the PHY/MAC overhead.
                    assert!(per_frame >= FEEDBACK_FRAME_OVERHEAD_S);
                }
            }
        }
    }

    #[test]
    fn payload_airtime_linear_in_bits() {
        let a = feedback_payload_airtime_s(1000, 24.0);
        let b = feedback_payload_airtime_s(2000, 24.0);
        assert!((b - 2.0 * a).abs() < 1e-15);
    }
}
