//! End-to-end MU-MIMO downlink BER measurement.
//!
//! This reproduces the BER computation procedure of Section 5.2.1 of the paper:
//!
//! 1. random payload bits are generated for every station and modulated with
//!    16-QAM (optionally after rate-1/2 BCC encoding),
//! 2. the per-station beamforming feedback (ideal, 802.11-quantized, SplitBeam
//!    reconstructed, ...) is stacked into the equivalent channel and a
//!    zero-forcing precoder is computed,
//! 3. the symbols are sent through the *true* channel matrices with AWGN,
//! 4. each station performs maximum-ratio combining on its own stream, hard
//!    demaps the symbols (and Viterbi-decodes when coding is enabled), and
//! 5. the recovered bits are compared with the transmitted ones.
//!
//! Because the precoder is derived from the *reported* feedback while the
//! signal propagates through the *true* channel, any feedback compression error
//! shows up as residual inter-user interference and therefore as BER — exactly
//! the mechanism the paper measures.

use crate::channel::ChannelSnapshot;
use crate::coding::{Bcc, CodeRate};
use crate::modulation::{count_bit_errors, Modulation};
use crate::precoding::{BeamformingFeedback, ZfPrecoder};
use crate::PhyError;
use mimo_math::Complex64;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the BER link simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Payload modulation (16-QAM in the paper).
    pub modulation: Modulation,
    /// Per-stream signal-to-noise ratio in dB.
    pub snr_db: f64,
    /// Number of payload symbols transmitted per subcarrier and station.
    pub symbols_per_subcarrier: usize,
    /// Optional binary convolutional code (Fig. 10 uses rate 1/2; `None`
    /// reproduces the uncoded setting of Fig. 9).
    pub coding: Option<CodeRate>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            modulation: Modulation::Qam16,
            snr_db: 20.0,
            symbols_per_subcarrier: 2,
            coding: None,
        }
    }
}

/// Outcome of one link simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Bit errors per station.
    pub per_user_errors: Vec<usize>,
    /// Payload bits per station.
    pub per_user_bits: Vec<usize>,
}

impl LinkReport {
    /// Aggregate bit error rate across all stations.
    pub fn ber(&self) -> f64 {
        let errors: usize = self.per_user_errors.iter().sum();
        let bits: usize = self.per_user_bits.iter().sum();
        if bits == 0 {
            0.0
        } else {
            errors as f64 / bits as f64
        }
    }

    /// Bit error rate of one station.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn user_ber(&self, user: usize) -> f64 {
        if self.per_user_bits[user] == 0 {
            0.0
        } else {
            self.per_user_errors[user] as f64 / self.per_user_bits[user] as f64
        }
    }

    /// Merges another report into this one (used to accumulate over many CSI samples).
    pub fn merge(&mut self, other: &LinkReport) {
        if self.per_user_errors.len() < other.per_user_errors.len() {
            self.per_user_errors.resize(other.per_user_errors.len(), 0);
            self.per_user_bits.resize(other.per_user_bits.len(), 0);
        }
        for (i, (&e, &b)) in other
            .per_user_errors
            .iter()
            .zip(other.per_user_bits.iter())
            .enumerate()
        {
            self.per_user_errors[i] += e;
            self.per_user_bits[i] += b;
        }
    }

    /// An empty report, convenient as a fold seed.
    pub fn empty() -> Self {
        Self {
            per_user_errors: Vec::new(),
            per_user_bits: Vec::new(),
        }
    }
}

/// Draws a complex Gaussian noise sample with the given per-complex-dimension variance.
fn noise_sample(rng: &mut impl Rng, variance: f64) -> Complex64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let mag = (variance * -u1.ln()).sqrt();
    Complex64::from_polar(mag, 2.0 * std::f64::consts::PI * u2)
}

/// Estimates one stream from the received vector `y` through row `index` of an
/// MMSE filter matrix (`streams x Nr`; row `i` recovers stream `i`).
///
/// Only the requested row is applied — a single dot product per symbol instead
/// of the full `streams x Nr` product (whose other rows would be discarded).
/// Returns zero when the filter is unavailable (singular effective channel) or
/// the stream index is out of range.
fn estimate_stream(
    filter: Option<&mimo_math::CMatrix>,
    y: &[Complex64],
    index: usize,
) -> Complex64 {
    match filter {
        Some(f) if index < f.rows() => (0..f.cols())
            .map(|c| f[(index, c)] * y[c])
            .sum::<Complex64>(),
        _ => Complex64::ZERO,
    }
}

/// Spreads consecutive coded bits across subcarriers (802.11-style block
/// interleaving).
///
/// Hard-decision Viterbi copes well with scattered errors but collapses on the
/// bursts a deeply faded subcarrier produces, so — like the standard — the
/// coded path never sends adjacent coded bits on the same subcarrier. Writing
/// the stream row-major into a `bits_per_subcarrier x subcarriers` block and
/// reading it column-major gives transmit position
/// `p = (j % subcarriers) * bits_per_subcarrier + j / subcarriers` for coded
/// bit `j`, a bijection on the full channel-bit capacity.
fn interleave_bits(coded: &[bool], bits_per_subcarrier: usize) -> Vec<bool> {
    debug_assert_eq!(coded.len() % bits_per_subcarrier, 0);
    let subcarriers = coded.len() / bits_per_subcarrier;
    let mut out = vec![false; coded.len()];
    for (j, &bit) in coded.iter().enumerate() {
        out[(j % subcarriers) * bits_per_subcarrier + j / subcarriers] = bit;
    }
    out
}

/// Inverse of [`interleave_bits`], applied to the demodulated stream.
fn deinterleave_bits(received: &[bool], bits_per_subcarrier: usize) -> Vec<bool> {
    debug_assert_eq!(received.len() % bits_per_subcarrier, 0);
    let subcarriers = received.len() / bits_per_subcarrier;
    let mut out = vec![false; received.len()];
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = received[(j % subcarriers) * bits_per_subcarrier + j / subcarriers];
    }
    out
}

/// Finds the largest number of information bits whose coded length fits in `capacity`.
fn fit_info_bits(codec: &Bcc, capacity: usize) -> usize {
    if capacity == 0 {
        return 0;
    }
    let mut guess = ((capacity as f64) * codec.rate().as_f64()) as usize;
    while guess > 0 && codec.coded_len(guess) > capacity {
        guess -= 1;
    }
    guess
}

/// Runs the full BER measurement of Section 5.2.1 for one CSI snapshot and one
/// set of beamforming feedback.
///
/// `feedback[u][s]` must be an `Nt x Nss` matrix for every station `u` and
/// subcarrier `s` of the snapshot.
///
/// # Errors
/// * [`PhyError::DimensionMismatch`] when the feedback does not match the
///   snapshot's stations/subcarriers.
/// * [`PhyError::SingularChannel`] when the stacked feedback is rank deficient.
pub fn simulate_mu_mimo_ber(
    snapshot: &ChannelSnapshot,
    feedback: &BeamformingFeedback,
    config: &LinkConfig,
    rng: &mut impl Rng,
) -> Result<LinkReport, PhyError> {
    let num_users = snapshot.num_users();
    let subcarriers = snapshot.subcarriers();
    if feedback.len() != num_users {
        return Err(PhyError::DimensionMismatch(format!(
            "feedback for {} users, snapshot has {num_users}",
            feedback.len()
        )));
    }
    if feedback[0].len() != subcarriers {
        return Err(PhyError::DimensionMismatch(format!(
            "feedback for {} subcarriers, snapshot has {subcarriers}",
            feedback[0].len()
        )));
    }

    let precoder = ZfPrecoder::from_feedback(feedback)?;
    let bps = config.modulation.bits_per_symbol();
    let symbols_per_user = subcarriers * config.symbols_per_subcarrier;
    let channel_bit_capacity = symbols_per_user * bps;

    // Generate (and optionally encode) the payload of every station.
    let mut info_bits: Vec<Vec<bool>> = Vec::with_capacity(num_users);
    let mut tx_bits: Vec<Vec<bool>> = Vec::with_capacity(num_users);
    for _ in 0..num_users {
        match config.coding {
            None => {
                let bits: Vec<bool> = (0..channel_bit_capacity).map(|_| rng.gen()).collect();
                info_bits.push(bits.clone());
                tx_bits.push(bits);
            }
            Some(rate) => {
                let codec = Bcc::new(rate);
                let info_len = fit_info_bits(&codec, channel_bit_capacity);
                let bits: Vec<bool> = (0..info_len).map(|_| rng.gen()).collect();
                let mut coded = codec.encode(&bits);
                coded.resize(channel_bit_capacity, false);
                info_bits.push(bits);
                tx_bits.push(interleave_bits(&coded, config.symbols_per_subcarrier * bps));
            }
        }
    }

    // Modulate every station's channel bits.
    let tx_symbols: Vec<Vec<Complex64>> = tx_bits
        .iter()
        .map(|bits| config.modulation.modulate(bits))
        .collect();

    let noise_variance = 10f64.powf(-config.snr_db / 10.0);
    let mut rx_symbols: Vec<Vec<Complex64>> = vec![Vec::with_capacity(symbols_per_user); num_users];

    // Reusable buffers for the per-symbol hot loop: one persistent filter
    // matrix per user (refilled in place every subcarrier) plus the usual
    // vector scratch.
    let mut ws = mimo_math::Workspace::new();
    let mut g = mimo_math::CMatrix::zeros(1, 1);
    let mut filters: Vec<mimo_math::CMatrix> = (0..num_users)
        .map(|_| mimo_math::CMatrix::zeros(1, 1))
        .collect();
    let mut filter_ok = vec![false; num_users];
    let mut x: Vec<Complex64> = Vec::with_capacity(num_users);
    let mut tx: Vec<Complex64> = Vec::new();
    let mut y: Vec<Complex64> = Vec::new();

    for s in 0..subcarriers {
        let w = precoder.precoder(s);
        // Per-user MMSE receive filters. Each station estimates the effective
        // channel of every stream from the beamformed preamble, G_u = H_u(s) W(s),
        // and applies an MMSE equalizer; its own stream estimate is the u-th
        // entry. When the feedback is accurate the precoder keeps the desired
        // stream strong and the equalizer operates at high post-combining SNR;
        // compression error misaligns the precoder, the desired-stream gain
        // drops and interference leaks, which raises the BER — the mechanism
        // the paper measures.
        for u in 0..num_users {
            snapshot.csi(u)[s].matmul_into(w, &mut g);
            filter_ok[u] =
                mimo_math::solve::mmse_filter_into(&g, noise_variance, &mut ws, &mut filters[u])
                    .is_ok();
        }
        for k in 0..config.symbols_per_subcarrier {
            let t = s * config.symbols_per_subcarrier + k;
            // Stacked transmit vector across streams.
            x.clear();
            x.extend((0..num_users).map(|u| tx_symbols[u][t]));
            // Precoded transmit signal at the AP antennas.
            w.matvec_into(&x, &mut tx);
            for u in 0..num_users {
                let h = &snapshot.csi(u)[s];
                h.matvec_into(&tx, &mut y);
                for value in y.iter_mut() {
                    *value += noise_sample(rng, noise_variance);
                }
                let filter = filter_ok[u].then_some(&filters[u]);
                rx_symbols[u].push(estimate_stream(filter, &y, u * snapshot.nss()));
            }
        }
    }

    // Demodulate, decode, count errors.
    let mut per_user_errors = Vec::with_capacity(num_users);
    let mut per_user_bits = Vec::with_capacity(num_users);
    for u in 0..num_users {
        let rx_bits = config.modulation.demodulate(&rx_symbols[u]);
        match config.coding {
            None => {
                let errors = count_bit_errors(&info_bits[u], &rx_bits[..info_bits[u].len()]);
                per_user_errors.push(errors);
                per_user_bits.push(info_bits[u].len());
            }
            Some(rate) => {
                let codec = Bcc::new(rate);
                let coded_len = codec.coded_len(info_bits[u].len());
                let deinterleaved =
                    deinterleave_bits(&rx_bits, bps * config.symbols_per_subcarrier);
                let decoded = codec.decode(
                    &deinterleaved[..coded_len.min(deinterleaved.len())],
                    info_bits[u].len(),
                )?;
                let errors = count_bit_errors(&info_bits[u], &decoded);
                per_user_errors.push(errors);
                per_user_bits.push(info_bits[u].len());
            }
        }
    }

    Ok(LinkReport {
        per_user_errors,
        per_user_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelModel, EnvironmentProfile};
    use crate::ofdm::Bandwidth;
    use mimo_math::CMatrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn snapshot(seed: u64, n: usize, bw: Bandwidth) -> ChannelSnapshot {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ChannelModel::new(EnvironmentProfile::e1(), bw, n, n, 1).sample(&mut rng)
    }

    #[test]
    fn ideal_feedback_high_snr_is_nearly_error_free() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let snap = snapshot(1, 2, Bandwidth::Mhz20);
        let feedback = snap.ideal_beamforming();
        let cfg = LinkConfig {
            snr_db: 30.0,
            ..LinkConfig::default()
        };
        let report = simulate_mu_mimo_ber(&snap, &feedback, &cfg, &mut rng).unwrap();
        assert!(
            report.ber() < 0.02,
            "ideal feedback at 30 dB should be nearly error free, got {}",
            report.ber()
        );
    }

    #[test]
    fn corrupted_feedback_increases_ber() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let snap = snapshot(2, 3, Bandwidth::Mhz20);
        let ideal = snap.ideal_beamforming();
        let cfg = LinkConfig::default();
        let report_ideal = simulate_mu_mimo_ber(&snap, &ideal, &cfg, &mut rng).unwrap();

        // Heavily corrupt the feedback (user-dependent pseudo-random unit vectors).
        let corrupted: BeamformingFeedback = ideal
            .iter()
            .enumerate()
            .map(|(u, per_sc)| {
                per_sc
                    .iter()
                    .enumerate()
                    .map(|(s, v)| {
                        CMatrix::from_fn(v.rows(), v.cols(), |r, _| {
                            Complex64::from_polar(
                                1.0 / (v.rows() as f64).sqrt(),
                                (s as f64 * 0.911 + r as f64 * 2.3 + u as f64 * 1.7).sin() * 3.0
                                    + u as f64,
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        let report_bad = simulate_mu_mimo_ber(&snap, &corrupted, &cfg, &mut rng).unwrap();
        assert!(
            report_bad.ber() > report_ideal.ber(),
            "corrupted feedback must increase BER ({} vs {})",
            report_bad.ber(),
            report_ideal.ber()
        );
    }

    #[test]
    fn low_snr_increases_ber() {
        let snap = snapshot(3, 2, Bandwidth::Mhz20);
        let feedback = snap.ideal_beamforming();
        let mut rng_hi = ChaCha8Rng::seed_from_u64(7);
        let mut rng_lo = ChaCha8Rng::seed_from_u64(7);
        let hi = simulate_mu_mimo_ber(
            &snap,
            &feedback,
            &LinkConfig {
                snr_db: 30.0,
                ..LinkConfig::default()
            },
            &mut rng_hi,
        )
        .unwrap();
        let lo = simulate_mu_mimo_ber(
            &snap,
            &feedback,
            &LinkConfig {
                snr_db: 0.0,
                ..LinkConfig::default()
            },
            &mut rng_lo,
        )
        .unwrap();
        assert!(lo.ber() > hi.ber());
    }

    #[test]
    fn coding_reduces_ber_at_moderate_snr() {
        let snap = snapshot(4, 2, Bandwidth::Mhz20);
        let feedback = snap.ideal_beamforming();
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let uncoded = simulate_mu_mimo_ber(
            &snap,
            &feedback,
            &LinkConfig {
                snr_db: 16.0,
                symbols_per_subcarrier: 4,
                ..LinkConfig::default()
            },
            &mut rng_a,
        )
        .unwrap();
        let coded = simulate_mu_mimo_ber(
            &snap,
            &feedback,
            &LinkConfig {
                snr_db: 16.0,
                symbols_per_subcarrier: 4,
                coding: Some(CodeRate::Half),
                ..LinkConfig::default()
            },
            &mut rng_b,
        )
        .unwrap();
        assert!(
            coded.ber() <= uncoded.ber(),
            "rate-1/2 coding should not increase BER ({} vs {})",
            coded.ber(),
            uncoded.ber()
        );
    }

    #[test]
    fn interleaver_roundtrips_for_all_geometries() {
        // deinterleave(interleave(x)) == x across subcarrier counts and
        // per-subcarrier bit widths, including the degenerate 1-subcarrier and
        // 1-bit-per-subcarrier shapes.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for (subcarriers, bits_per_sc) in [(1usize, 8usize), (56, 1), (56, 16), (234, 12), (7, 5)] {
            let bits: Vec<bool> = (0..subcarriers * bits_per_sc).map(|_| rng.gen()).collect();
            let interleaved = interleave_bits(&bits, bits_per_sc);
            assert_eq!(
                deinterleave_bits(&interleaved, bits_per_sc),
                bits,
                "{subcarriers}x{bits_per_sc}"
            );
            // The permutation must actually spread adjacent coded bits onto
            // distinct subcarriers when more than one subcarrier exists.
            if subcarriers > 1 {
                let pos = |j: usize| (j % subcarriers) * bits_per_sc + j / subcarriers;
                assert_ne!(pos(0) / bits_per_sc, pos(1) / bits_per_sc);
            }
        }
    }

    #[test]
    fn report_merge_accumulates() {
        let a = LinkReport {
            per_user_errors: vec![1, 2],
            per_user_bits: vec![100, 100],
        };
        let b = LinkReport {
            per_user_errors: vec![3, 0],
            per_user_bits: vec![100, 100],
        };
        let mut merged = LinkReport::empty();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.per_user_errors, vec![4, 2]);
        assert!((merged.ber() - 6.0 / 400.0).abs() < 1e-12);
        assert!((merged.user_ber(0) - 4.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_feedback_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let snap = snapshot(6, 2, Bandwidth::Mhz20);
        let mut feedback = snap.ideal_beamforming();
        feedback.pop();
        let err =
            simulate_mu_mimo_ber(&snap, &feedback, &LinkConfig::default(), &mut rng).unwrap_err();
        assert!(matches!(err, PhyError::DimensionMismatch(_)));
    }

    #[test]
    fn empty_report_ber_is_zero() {
        assert_eq!(LinkReport::empty().ber(), 0.0);
    }

    #[test]
    fn fit_info_bits_respects_capacity() {
        let codec = Bcc::new(CodeRate::Half);
        for capacity in [0usize, 10, 100, 1000] {
            let info = fit_info_bits(&codec, capacity);
            if info > 0 {
                assert!(codec.coded_len(info) <= capacity);
                assert!(codec.coded_len(info + 1) > capacity);
            }
        }
    }
}
