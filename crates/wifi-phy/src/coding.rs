//! Binary convolutional coding (BCC) and hard-decision Viterbi decoding.
//!
//! 802.11 uses the industry-standard rate-1/2, constraint-length-7
//! convolutional code with generator polynomials (133, 171) octal, punctured to
//! obtain rates 2/3 and 3/4. Figure 10 of the paper applies the rate-1/2 code
//! to the 160 MHz experiments; this module provides the encoder, the puncturer
//! and a hard-decision Viterbi decoder.

use crate::PhyError;
use serde::{Deserialize, Serialize};

/// Generator polynomials of the 802.11 convolutional code (octal 133 and 171),
/// constraint length 7.
const G0: u8 = 0o133;
const G1: u8 = 0o171;
const CONSTRAINT: usize = 7;
const NUM_STATES: usize = 1 << (CONSTRAINT - 1);

/// Code rate of the binary convolutional code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing) — used in the paper's Fig. 10.
    Half,
    /// Rate 2/3 (802.11 puncturing pattern).
    TwoThirds,
    /// Rate 3/4 (802.11 puncturing pattern).
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator / denominator of the rate as a float.
    pub fn as_f64(self) -> f64 {
        match self {
            CodeRate::Half => 0.5,
            CodeRate::TwoThirds => 2.0 / 3.0,
            CodeRate::ThreeQuarters => 0.75,
        }
    }

    /// Puncturing pattern applied to the rate-1/2 mother code output.
    /// `true` entries are transmitted; the pattern repeats.
    fn puncture_pattern(self) -> &'static [bool] {
        match self {
            CodeRate::Half => &[true, true],
            // 802.11 rate 2/3: keep A1 B1 A2, drop B2 (pattern over 2 input bits).
            CodeRate::TwoThirds => &[true, true, true, false],
            // 802.11 rate 3/4: keep A1 B1 A2 drop B2 drop A3 keep B3.
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }
}

/// The 802.11 binary convolutional codec at a given rate.
///
/// ```
/// use wifi_phy::coding::{Bcc, CodeRate};
/// let codec = Bcc::new(CodeRate::Half);
/// let bits = vec![true, false, true, true, false, false, true, false];
/// let coded = codec.encode(&bits);
/// let decoded = codec.decode(&coded, bits.len()).unwrap();
/// assert_eq!(decoded, bits);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bcc {
    rate: CodeRate,
}

impl Bcc {
    /// Creates a codec with the given rate.
    pub fn new(rate: CodeRate) -> Self {
        Self { rate }
    }

    /// The configured code rate.
    pub fn rate(&self) -> CodeRate {
        self.rate
    }

    /// Number of coded bits produced for `info_bits` information bits
    /// (including the 6 tail bits that flush the encoder).
    pub fn coded_len(&self, info_bits: usize) -> usize {
        let mother = 2 * (info_bits + CONSTRAINT - 1);
        let pattern = self.rate.puncture_pattern();
        let kept_per_period = pattern.iter().filter(|&&b| b).count();
        // Ceiling of mother * kept / pattern_len, accounting for partial periods.
        let full = mother / pattern.len();
        let rem = mother % pattern.len();
        full * kept_per_period + pattern[..rem].iter().filter(|&&b| b).count()
    }

    /// Convolutionally encodes `bits` (appending 6 zero tail bits) and applies
    /// the puncturing pattern of the configured rate.
    pub fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let mut state: u8 = 0;
        let mut mother = Vec::with_capacity(2 * (bits.len() + CONSTRAINT - 1));
        let padded = bits
            .iter()
            .copied()
            .chain(std::iter::repeat_n(false, CONSTRAINT - 1));
        for bit in padded {
            let reg = ((bit as u8) << (CONSTRAINT - 1)) | state;
            mother.push(parity(reg & G0));
            mother.push(parity(reg & G1));
            state = reg >> 1;
        }
        // Puncture.
        let pattern = self.rate.puncture_pattern();
        mother
            .iter()
            .enumerate()
            .filter(|(i, _)| pattern[i % pattern.len()])
            .map(|(_, &b)| b)
            .collect()
    }

    /// Hard-decision Viterbi decoding of `coded` back to `info_bits` information
    /// bits. Punctured positions are treated as erasures (zero branch cost).
    ///
    /// # Errors
    /// Returns [`PhyError::DimensionMismatch`] if `coded` is shorter than the
    /// expected coded length for `info_bits`.
    pub fn decode(&self, coded: &[bool], info_bits: usize) -> Result<Vec<bool>, PhyError> {
        let expected = self.coded_len(info_bits);
        if coded.len() < expected {
            return Err(PhyError::DimensionMismatch(format!(
                "expected at least {expected} coded bits, got {}",
                coded.len()
            )));
        }

        // Re-expand the punctured stream into (bit, known) pairs for the mother code.
        let pattern = self.rate.puncture_pattern();
        let total_steps = info_bits + CONSTRAINT - 1;
        let mother_len = 2 * total_steps;
        let mut received: Vec<Option<bool>> = Vec::with_capacity(mother_len);
        let mut coded_iter = coded.iter();
        for i in 0..mother_len {
            if pattern[i % pattern.len()] {
                received.push(coded_iter.next().copied());
            } else {
                received.push(None);
            }
        }

        // Viterbi over the 64-state trellis.
        const INF: u32 = u32::MAX / 4;
        let mut metrics = vec![INF; NUM_STATES];
        metrics[0] = 0;
        // survivors[t][state] = (previous state, input bit)
        let mut survivors: Vec<Vec<(u16, bool)>> = Vec::with_capacity(total_steps);

        for t in 0..total_steps {
            let r0 = received[2 * t];
            let r1 = received[2 * t + 1];
            let mut next = vec![INF; NUM_STATES];
            let mut surv = vec![(0u16, false); NUM_STATES];
            for (state, &metric) in metrics.iter().enumerate() {
                if metric >= INF {
                    continue;
                }
                for input in [false, true] {
                    let reg = ((input as u8) << (CONSTRAINT - 1)) | state as u8;
                    let out0 = parity(reg & G0);
                    let out1 = parity(reg & G1);
                    let mut cost = 0u32;
                    if let Some(r) = r0 {
                        cost += (r != out0) as u32;
                    }
                    if let Some(r) = r1 {
                        cost += (r != out1) as u32;
                    }
                    let next_state = (reg >> 1) as usize;
                    let cand = metric + cost;
                    if cand < next[next_state] {
                        next[next_state] = cand;
                        surv[next_state] = (state as u16, input);
                    }
                }
            }
            metrics = next;
            survivors.push(surv);
        }

        // Trace back from state 0 (the tail bits force the encoder back to zero).
        let mut state = 0usize;
        let mut decoded = vec![false; total_steps];
        for t in (0..total_steps).rev() {
            let (prev, input) = survivors[t][state];
            decoded[t] = input;
            state = prev as usize;
        }
        decoded.truncate(info_bits);
        Ok(decoded)
    }
}

/// Parity (XOR of all bits) of a byte.
fn parity(x: u8) -> bool {
    x.count_ones() % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng as _;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parity_works() {
        assert!(!parity(0b0000));
        assert!(parity(0b0001));
        assert!(!parity(0b0011));
        assert!(parity(0b0111));
    }

    #[test]
    fn rate_half_noiseless_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let codec = Bcc::new(CodeRate::Half);
        let bits: Vec<bool> = (0..200).map(|_| rng.gen()).collect();
        let coded = codec.encode(&bits);
        assert_eq!(coded.len(), codec.coded_len(bits.len()));
        let decoded = codec.decode(&coded, bits.len()).unwrap();
        assert_eq!(decoded, bits);
    }

    #[test]
    fn punctured_rates_noiseless_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for rate in [CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let codec = Bcc::new(rate);
            let bits: Vec<bool> = (0..120).map(|_| rng.gen()).collect();
            let coded = codec.encode(&bits);
            assert_eq!(coded.len(), codec.coded_len(bits.len()));
            let decoded = codec.decode(&coded, bits.len()).unwrap();
            assert_eq!(decoded, bits, "rate {rate:?}");
        }
    }

    #[test]
    fn corrects_scattered_errors_at_rate_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let codec = Bcc::new(CodeRate::Half);
        let bits: Vec<bool> = (0..300).map(|_| rng.gen()).collect();
        let mut coded = codec.encode(&bits);
        // Flip ~2% of coded bits, spread out.
        let n_err = coded.len() / 50;
        for k in 0..n_err {
            let idx = (k * coded.len() / n_err + 3) % coded.len();
            coded[idx] = !coded[idx];
        }
        let decoded = codec.decode(&coded, bits.len()).unwrap();
        let errors = decoded
            .iter()
            .zip(bits.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(errors, 0, "rate-1/2 BCC should correct scattered 2% errors");
    }

    #[test]
    fn coding_gain_over_uncoded() {
        // With 5% random coded-bit errors, the decoded info BER must be far below 5%.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let codec = Bcc::new(CodeRate::Half);
        let bits: Vec<bool> = (0..2000).map(|_| rng.gen()).collect();
        let mut coded = codec.encode(&bits);
        let mut flipped = 0usize;
        for b in coded.iter_mut() {
            if rng.gen_bool(0.05) {
                *b = !*b;
                flipped += 1;
            }
        }
        assert!(flipped > 0);
        let decoded = codec.decode(&coded, bits.len()).unwrap();
        let errors = decoded
            .iter()
            .zip(bits.iter())
            .filter(|(a, b)| a != b)
            .count();
        let info_ber = errors as f64 / bits.len() as f64;
        assert!(
            info_ber < 0.02,
            "info BER {info_ber} should be well below 5%"
        );
    }

    #[test]
    fn short_input_is_rejected() {
        let codec = Bcc::new(CodeRate::Half);
        let err = codec.decode(&[true; 4], 100).unwrap_err();
        assert!(matches!(err, PhyError::DimensionMismatch(_)));
    }

    #[test]
    fn rate_values() {
        assert!((CodeRate::Half.as_f64() - 0.5).abs() < 1e-12);
        assert!((CodeRate::TwoThirds.as_f64() - 2.0 / 3.0).abs() < 1e-12);
        assert!((CodeRate::ThreeQuarters.as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coded_len_tracks_rate() {
        let info = 600usize;
        let half = Bcc::new(CodeRate::Half).coded_len(info);
        let two_thirds = Bcc::new(CodeRate::TwoThirds).coded_len(info);
        let three_quarters = Bcc::new(CodeRate::ThreeQuarters).coded_len(info);
        assert!(half > two_thirds);
        assert!(two_thirds > three_quarters);
        // Approximate rate check (tail bits make it slightly lower than nominal).
        assert!((info as f64 / half as f64 - 0.5).abs() < 0.02);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_noiseless_roundtrip(len in 1usize..200, seed in 0u64..500) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
            for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
                let codec = Bcc::new(rate);
                let decoded = codec.decode(&codec.encode(&bits), bits.len()).unwrap();
                prop_assert_eq!(&decoded, &bits);
            }
        }

        #[test]
        fn prop_single_error_corrected(len in 8usize..100, pos_frac in 0.0f64..1.0, seed in 0u64..200) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let codec = Bcc::new(CodeRate::Half);
            let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
            let mut coded = codec.encode(&bits);
            let pos = ((coded.len() - 1) as f64 * pos_frac) as usize;
            coded[pos] = !coded[pos];
            let decoded = codec.decode(&coded, bits.len()).unwrap();
            prop_assert_eq!(decoded, bits);
        }
    }
}
