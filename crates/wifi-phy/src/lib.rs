//! Wi-Fi PHY substrate for the SplitBeam reproduction.
//!
//! The paper evaluates SplitBeam on CSI measured with commodity 802.11ac
//! hardware (Nexmon) plus MATLAB WLAN-toolbox synthetic channels, and measures
//! beamforming quality as the bit error rate of a zero-forcing MU-MIMO downlink
//! with 16-QAM payloads. None of that tooling is available here, so this crate
//! implements the full substrate from scratch:
//!
//! * [`ofdm`] — bandwidth / subcarrier configurations of 802.11ac/ax,
//! * [`channel`] — a clustered tap-delay-line (TGn/TGac style) MU-MIMO channel
//!   simulator with distinct environment profiles (the stand-in for the paper's
//!   E1 / E2 measurement campaigns and the Model-B synthetic data),
//! * [`modulation`] — Gray-coded BPSK/QPSK/16-QAM/64-QAM mapping and hard
//!   demapping,
//! * [`coding`] — the 802.11 rate-1/2 K=7 binary convolutional code with
//!   puncturing and a hard-decision Viterbi decoder,
//! * [`precoding`] — the zero-forcing precoder of Section 5.2.1,
//! * [`link`] — the end-to-end BER measurement procedure (steps 1–6 of
//!   Section 5.2.1),
//! * [`sounding`] — the multi-user channel sounding airtime model (Figure 3).
//!
//! # Example: one shot of the MU-MIMO link
//!
//! ```
//! use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
//! use wifi_phy::ofdm::Bandwidth;
//! use wifi_phy::link::{LinkConfig, simulate_mu_mimo_ber};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
//! let snapshot = model.sample(&mut rng);
//! // Use the ideal per-user beamforming vectors as feedback (zero reconstruction error).
//! let feedback = snapshot.ideal_beamforming();
//! let cfg = LinkConfig::default();
//! let report = simulate_mu_mimo_ber(&snapshot, &feedback, &cfg, &mut rng).unwrap();
//! assert!(report.ber() <= 0.5);
//! ```

pub mod channel;
pub mod coding;
pub mod link;
pub mod modulation;
pub mod ofdm;
pub mod precoding;
pub mod sounding;

pub use channel::{ChannelModel, ChannelSnapshot, EnvironmentProfile};
pub use link::{LinkConfig, LinkReport};
pub use ofdm::Bandwidth;

/// Errors produced by the PHY layer simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyError {
    /// A matrix operation failed because the effective channel was singular
    /// (e.g. two stations with identical beamforming vectors).
    SingularChannel,
    /// Operand dimensions are inconsistent (wrong number of users, antennas or
    /// subcarriers).
    DimensionMismatch(String),
    /// The requested configuration is not supported (e.g. unknown MCS).
    Unsupported(String),
}

impl std::fmt::Display for PhyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhyError::SingularChannel => write!(f, "effective channel matrix is singular"),
            PhyError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            PhyError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_meaningful() {
        assert!(format!("{}", PhyError::SingularChannel).contains("singular"));
        assert!(format!("{}", PhyError::DimensionMismatch("2 vs 3".into())).contains("2 vs 3"));
        assert!(format!("{}", PhyError::Unsupported("256-QAM".into())).contains("256-QAM"));
    }
}
