//! The plain IEEE 802.11 quantized-feedback baseline, packaged for the benches.

use crate::BaselineError;
use dot11_bfi::pipeline::dot11_feedback_roundtrip;
use dot11_bfi::quantize::AngleResolution;
use mimo_math::CMatrix;
use wifi_phy::channel::ChannelSnapshot;
use wifi_phy::precoding::BeamformingFeedback;

/// Produces the beamforming feedback the AP would reconstruct if every station
/// used the standard 802.11 compressed feedback at the given angle resolution.
///
/// # Errors
/// Returns [`BaselineError::Pipeline`] when the Givens pipeline fails (which
/// only happens for degenerate channel matrices).
pub fn dot11_feedback_for_snapshot(
    snapshot: &ChannelSnapshot,
    resolution: AngleResolution,
) -> Result<BeamformingFeedback, BaselineError> {
    let mut feedback = Vec::with_capacity(snapshot.num_users());
    for user in 0..snapshot.num_users() {
        let rebuilt: Vec<CMatrix> =
            dot11_feedback_roundtrip(snapshot.csi(user), snapshot.nss(), resolution)
                .map_err(|e| BaselineError::Pipeline(e.to_string()))?;
        feedback.push(rebuilt);
    }
    Ok(feedback)
}

/// Station-side FLOPs of the plain 802.11 baseline (SVD + Givens) for the
/// snapshot's configuration.
pub fn dot11_sta_flops_for_snapshot(snapshot: &ChannelSnapshot) -> u64 {
    dot11_bfi::complexity::dot11_sta_flops(snapshot.nt(), snapshot.nr(), snapshot.subcarriers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::link::{simulate_mu_mimo_ber, LinkConfig};
    use wifi_phy::ofdm::Bandwidth;

    #[test]
    fn produces_feedback_for_every_user_and_subcarrier() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = model.sample(&mut rng);
        let feedback = dot11_feedback_for_snapshot(&snap, AngleResolution::High).unwrap();
        assert_eq!(feedback.len(), 2);
        assert_eq!(feedback[0].len(), 56);
        assert_eq!(feedback[0][0].shape(), (2, 1));
    }

    #[test]
    fn quantized_feedback_yields_low_ber_at_high_snr() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = model.sample(&mut rng);
        let feedback = dot11_feedback_for_snapshot(&snap, AngleResolution::High).unwrap();
        let cfg = LinkConfig {
            snr_db: 25.0,
            ..LinkConfig::default()
        };
        let report = simulate_mu_mimo_ber(&snap, &feedback, &cfg, &mut rng).unwrap();
        assert!(
            report.ber() < 0.05,
            "802.11 high-resolution feedback BER {} should be small",
            report.ber()
        );
    }

    #[test]
    fn flops_match_complexity_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = ChannelModel::new(EnvironmentProfile::e2(), Bandwidth::Mhz40, 3, 3, 1);
        let snap = model.sample(&mut rng);
        assert_eq!(
            dot11_sta_flops_for_snapshot(&snap),
            dot11_bfi::complexity::dot11_sta_flops(3, 3, 114)
        );
    }
}
