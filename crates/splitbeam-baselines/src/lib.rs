//! Baselines for the SplitBeam evaluation.
//!
//! * [`lbscifi`] — a reproduction of the LB-SciFi autoencoder baseline: the
//!   station still runs the full 802.11 pipeline (SVD + Givens decomposition)
//!   and then compresses the resulting angles with an autoencoder *encoder*;
//!   the AP decodes with the *decoder* and applies the inverse Givens
//!   reconstruction. Its defining property — the station pays for SVD + Givens
//!   **plus** the encoder — is what the paper's computational comparison
//!   exercises (Figs. 10 and 12).
//! * [`dot11`] — a thin adapter that exposes the plain 802.11 quantized
//!   feedback as a baseline producing the same `BeamformingFeedback` type used
//!   by the link simulator and benches.

pub mod dot11;
pub mod lbscifi;

pub use lbscifi::{LbSciFiConfig, LbSciFiModel};

/// Errors produced by the baseline implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Input dimensions do not match the baseline's configuration.
    DimensionMismatch(String),
    /// An inner 802.11 pipeline step failed.
    Pipeline(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            BaselineError::Pipeline(msg) => write!(f, "802.11 pipeline failure: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(format!("{}", BaselineError::DimensionMismatch("x".into())).contains("x"));
        assert!(format!("{}", BaselineError::Pipeline("svd".into())).contains("svd"));
    }
}
