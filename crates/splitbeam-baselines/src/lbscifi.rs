//! LB-SciFi: the autoencoder-based feedback-compression baseline.
//!
//! LB-SciFi (Sangdeh et al., ICNP 2020) compresses the *Givens angles* produced
//! by the standard 802.11 pipeline with an autoencoder trained in an
//! unsupervised manner. The station therefore still computes the SVD and the
//! Givens decomposition before running the encoder — which is exactly the extra
//! computational load SplitBeam eliminates, and the property the paper's
//! comparison plots (Figs. 10 and 12) exercise. The original implementation is
//! not public, so this module reproduces the published description: a dense
//! encoder/decoder pair over the normalized angle vector with a latent layer
//! sized to match SplitBeam's compression level `K`.

use crate::BaselineError;
use dot11_bfi::complexity::dot11_sta_flops;
use dot11_bfi::givens::{total_angles, GivensAngles};
use mimo_math::svd::Svd;
use mimo_math::CMatrix;
use neural::layer::Activation;
use neural::loss::Loss;
use neural::network::{LayerSpec, Network};
use neural::optimizer::OptimizerKind;
use neural::trainer::{Example, TrainConfig, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};
use wifi_phy::channel::ChannelSnapshot;
use wifi_phy::ofdm::MimoConfig;

/// Configuration of an LB-SciFi autoencoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbSciFiConfig {
    /// The MU-MIMO configuration the autoencoder is trained for.
    pub mimo: MimoConfig,
    /// Latent compression ratio (matched to SplitBeam's `K` in the comparisons).
    pub compression: f64,
}

impl LbSciFiConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `compression` is not in `(0, 1]`.
    pub fn new(mimo: MimoConfig, compression: f64) -> Self {
        assert!(
            compression > 0.0 && compression <= 1.0,
            "compression must be in (0, 1]"
        );
        Self { mimo, compression }
    }

    /// Width of the angle vector fed to the encoder: all Givens angles of all
    /// subcarriers.
    pub fn angle_dim(&self) -> usize {
        total_angles(self.mimo.nt, self.mimo.nss) * self.mimo.subcarriers()
    }

    /// Latent (code) width.
    pub fn latent_dim(&self) -> usize {
        ((self.angle_dim() as f64 * self.compression).round() as usize).max(1)
    }
}

/// A trained LB-SciFi autoencoder: encoder at the station, decoder at the AP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbSciFiModel {
    config: LbSciFiConfig,
    encoder: Network,
    decoder: Network,
}

/// Normalizes a Givens angle vector to roughly `[-1, 1]` for the autoencoder.
fn normalize_angles(angles: &[GivensAngles]) -> Vec<f32> {
    let mut out = Vec::new();
    for a in angles {
        for &phi in &a.phi {
            out.push((phi / std::f64::consts::PI - 1.0) as f32);
        }
        for &psi in &a.psi {
            out.push((psi / std::f64::consts::FRAC_PI_2 * 2.0 - 1.0) as f32);
        }
    }
    out
}

/// Inverse of [`normalize_angles`] for one configuration.
fn denormalize_angles(
    flat: &[f32],
    nt: usize,
    nss: usize,
    subcarriers: usize,
) -> Vec<GivensAngles> {
    let pairs = dot11_bfi::givens::angle_pairs(nt, nss);
    let per_sc = 2 * pairs;
    let mut out = Vec::with_capacity(subcarriers);
    for s in 0..subcarriers {
        let chunk = &flat[s * per_sc..(s + 1) * per_sc];
        let phi = chunk[..pairs]
            .iter()
            .map(|&v| {
                ((v as f64 + 1.0) * std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI)
            })
            .collect();
        let psi = chunk[pairs..]
            .iter()
            .map(|&v| {
                (((v as f64 + 1.0) / 2.0) * std::f64::consts::FRAC_PI_2)
                    .clamp(0.0, std::f64::consts::FRAC_PI_2)
            })
            .collect();
        out.push(GivensAngles { nt, nss, phi, psi });
    }
    out
}

/// Computes the normalized angle vector of one station's CSI (the autoencoder's
/// input): SVD → beamforming matrix → Givens decomposition → normalization.
///
/// # Errors
/// Returns [`BaselineError::Pipeline`] if the Givens decomposition fails.
pub fn angle_vector_for_user(
    snapshot: &ChannelSnapshot,
    user: usize,
) -> Result<Vec<f32>, BaselineError> {
    let mut angles = Vec::with_capacity(snapshot.subcarriers());
    for h in snapshot.csi(user) {
        let v = Svd::compute(h).beamforming_matrix(snapshot.nss());
        angles
            .push(GivensAngles::decompose(&v).map_err(|e| BaselineError::Pipeline(e.to_string()))?);
    }
    Ok(normalize_angles(&angles))
}

impl LbSciFiModel {
    /// Creates an untrained autoencoder.
    pub fn new(config: LbSciFiConfig, rng: &mut impl Rng) -> Self {
        let encoder = Network::new(
            &[LayerSpec::new(
                config.angle_dim(),
                config.latent_dim(),
                Activation::Tanh,
            )],
            rng,
        );
        let decoder = Network::new(
            &[LayerSpec::new(
                config.latent_dim(),
                config.angle_dim(),
                Activation::Identity,
            )],
            rng,
        );
        Self {
            config,
            encoder,
            decoder,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LbSciFiConfig {
        &self.config
    }

    /// Trains the autoencoder (unsupervised: targets are the inputs) on angle
    /// vectors; `epochs` is exposed so tests and benches can stay fast.
    pub fn train(&mut self, angle_vectors: &[Vec<f32>], epochs: usize, rng: &mut impl Rng) {
        let examples: Vec<Example> = angle_vectors
            .iter()
            .map(|v| (v.clone(), v.clone()))
            .collect();
        if examples.is_empty() {
            return;
        }
        // Join encoder and decoder for end-to-end training, then split back.
        let mut layers = self.encoder.layers().to_vec();
        layers.extend(self.decoder.layers().iter().cloned());
        let mut full = Network::from_layers(layers);
        let trainer = Trainer::new(
            TrainConfig {
                epochs,
                batch_size: 16,
                ..TrainConfig::default()
            },
            Loss::Mse,
            OptimizerKind::Adam {
                learning_rate: 1e-3,
            },
        );
        let split = examples.len() * 9 / 10;
        let (train, val) = examples.split_at(split.max(1).min(examples.len()));
        let val = if val.is_empty() { train } else { val };
        trainer.fit(&mut full, train, val, rng);
        let (encoder, decoder) = full.split_at(self.encoder.layers().len());
        self.encoder = encoder;
        self.decoder = decoder;
    }

    /// Station-side FLOPs: the full 802.11 pipeline (SVD + Givens) **plus** the
    /// encoder — LB-SciFi's defining computational drawback.
    pub fn sta_flops(&self) -> u64 {
        dot11_sta_flops(
            self.config.mimo.nt,
            self.config.mimo.nr,
            self.config.mimo.subcarriers(),
        ) + self.encoder.macs()
    }

    /// Feedback size in bits: the latent code at 16 bits per value.
    pub fn feedback_bits(&self) -> usize {
        self.config.latent_dim() * 16
    }

    /// Runs the full LB-SciFi round trip for one station of a snapshot and
    /// returns the beamforming matrices the AP would reconstruct.
    ///
    /// # Errors
    /// Returns [`BaselineError`] if the 802.11 pipeline or the autoencoder
    /// dimensions fail.
    pub fn feedback_for_user(
        &self,
        snapshot: &ChannelSnapshot,
        user: usize,
    ) -> Result<Vec<CMatrix>, BaselineError> {
        let angle_vector = angle_vector_for_user(snapshot, user)?;
        if angle_vector.len() != self.config.angle_dim() {
            return Err(BaselineError::DimensionMismatch(format!(
                "angle vector length {} does not match configuration {}",
                angle_vector.len(),
                self.config.angle_dim()
            )));
        }
        let code = self
            .encoder
            .predict(&angle_vector)
            .map_err(|e| BaselineError::DimensionMismatch(e.to_string()))?;
        let decoded = self
            .decoder
            .predict(&code)
            .map_err(|e| BaselineError::DimensionMismatch(e.to_string()))?;
        let angles = denormalize_angles(
            &decoded,
            self.config.mimo.nt,
            self.config.mimo.nss,
            self.config.mimo.subcarriers(),
        );
        Ok(angles.iter().map(GivensAngles::reconstruct).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wifi_phy::channel::{ChannelModel, EnvironmentProfile};
    use wifi_phy::ofdm::Bandwidth;

    fn config() -> LbSciFiConfig {
        LbSciFiConfig::new(MimoConfig::symmetric(2, Bandwidth::Mhz20), 0.125)
    }

    #[test]
    fn dimensions() {
        let c = config();
        // 2x2, Nss = 1: 2 angles per subcarrier x 56 subcarriers = 112.
        assert_eq!(c.angle_dim(), 112);
        assert_eq!(c.latent_dim(), 14);
    }

    #[test]
    fn angle_normalization_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = channel.sample(&mut rng);
        let vec = angle_vector_for_user(&snap, 0).unwrap();
        assert_eq!(vec.len(), 112);
        assert!(vec.iter().all(|v| v.abs() <= 1.0 + 1e-5));
        let angles = denormalize_angles(&vec, 2, 1, 56);
        assert_eq!(angles.len(), 56);
        // Reconstructed matrices must stay unit norm.
        for a in &angles {
            assert!(a.reconstruct().is_unitary_columns(1e-6));
        }
    }

    #[test]
    fn sta_cost_exceeds_dot11_alone() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = LbSciFiModel::new(config(), &mut rng);
        let dot11_only = dot11_sta_flops(2, 2, 56);
        assert!(model.sta_flops() > dot11_only);
        assert_eq!(model.feedback_bits(), 14 * 16);
    }

    #[test]
    fn training_improves_reconstruction() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let vectors: Vec<Vec<f32>> = (0..40)
            .map(|_| {
                let snap = channel.sample(&mut rng);
                angle_vector_for_user(&snap, 0).unwrap()
            })
            .collect();
        let mut model = LbSciFiModel::new(config(), &mut rng);
        let mse = |m: &LbSciFiModel| -> f32 {
            vectors
                .iter()
                .map(|v| {
                    let code = m.encoder.predict(v).unwrap();
                    let out = m.decoder.predict(&code).unwrap();
                    v.iter()
                        .zip(out.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        / v.len() as f32
                })
                .sum::<f32>()
                / vectors.len() as f32
        };
        let before = mse(&model);
        model.train(&vectors, 6, &mut rng);
        let after = mse(&model);
        assert!(
            after < before,
            "training should reduce AE error ({after} vs {before})"
        );
    }

    #[test]
    fn feedback_round_trip_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let channel = ChannelModel::new(EnvironmentProfile::e1(), Bandwidth::Mhz20, 2, 2, 1);
        let snap = channel.sample(&mut rng);
        let model = LbSciFiModel::new(config(), &mut rng);
        let feedback = model.feedback_for_user(&snap, 1).unwrap();
        assert_eq!(feedback.len(), 56);
        assert_eq!(feedback[0].shape(), (2, 1));
        for v in &feedback {
            assert!(v.is_unitary_columns(1e-6));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_compression_panics() {
        let _ = LbSciFiConfig::new(MimoConfig::symmetric(2, Bandwidth::Mhz20), 0.0);
    }
}
